// Tests for the sharded metrics registry: histogram bucket geometry at the
// edges of the double range, merge associativity across thread counts, and
// the zero-cost-when-off contract.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "lbmv/obs/metrics.h"
#include "lbmv/obs/obs.h"
#include "lbmv/util/json.h"
#include "lbmv/util/thread_pool.h"

namespace {

using namespace lbmv::obs;

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

/// RAII guard: enable recording for one test, restore "off" after.
struct EnabledScope {
  EnabledScope() { set_enabled(true); }
  ~EnabledScope() { set_enabled(false); }
};

// Recording-behaviour tests only apply with probes compiled in; under
// -DLBMV_OBS=OFF every record call is an intentional no-op.  Bucket
// geometry and name composition stay testable in both modes.
#define SKIP_IF_COMPILED_OUT()                                          \
  if (!lbmv::obs::kCompiledIn)                                          \
  GTEST_SKIP() << "probes compiled out (LBMV_OBS=0)"

TEST(HistogramBuckets, EdgeValuesLandInUnderflowAndOverflow) {
  // Zero, negatives, subnormals and anything below 2^-34 share the
  // underflow bucket.
  EXPECT_EQ(histogram_bucket(0.0), 0u);
  EXPECT_EQ(histogram_bucket(-0.0), 0u);
  EXPECT_EQ(histogram_bucket(-1.5), 0u);
  EXPECT_EQ(histogram_bucket(-kInf), 0u);
  EXPECT_EQ(histogram_bucket(5e-324), 0u);  // smallest subnormal
  EXPECT_EQ(histogram_bucket(std::numeric_limits<double>::denorm_min()), 0u);
  EXPECT_EQ(histogram_bucket(std::numeric_limits<double>::min()), 0u);
  EXPECT_EQ(histogram_bucket(std::ldexp(1.0, -35)), 0u);

  // +inf, max-double and anything >= 2^30 share the overflow bucket.
  EXPECT_EQ(histogram_bucket(kInf), kHistogramBuckets - 1);
  EXPECT_EQ(histogram_bucket(std::numeric_limits<double>::max()),
            kHistogramBuckets - 1);
  EXPECT_EQ(histogram_bucket(std::ldexp(1.0, 30)), kHistogramBuckets - 1);

  // The range edges themselves are in range.
  EXPECT_EQ(histogram_bucket(std::ldexp(1.0, -34)), 1u);
  EXPECT_EQ(histogram_bucket(std::nextafter(std::ldexp(1.0, 30), 0.0)),
            kHistogramBuckets - 2);
}

TEST(HistogramBuckets, UpperBoundsAreMonotoneAndBracketValues) {
  for (std::size_t b = 1; b + 1 < kHistogramBuckets; ++b) {
    EXPECT_LT(histogram_bucket_upper(b - 1), histogram_bucket_upper(b))
        << "bucket " << b;
  }
  EXPECT_TRUE(std::isinf(histogram_bucket_upper(kHistogramBuckets - 1)));

  // Every in-range value falls strictly below its bucket's upper bound and
  // at/above the previous bucket's.
  for (double v : {6e-11, 1e-6, 0.4375, 1.0, 1.0624, 3.14159, 12345.678,
                   9.9e8}) {
    const std::size_t b = histogram_bucket(v);
    ASSERT_GT(b, 0u);
    ASSERT_LT(b, kHistogramBuckets - 1);
    EXPECT_LT(v, histogram_bucket_upper(b)) << v;
    EXPECT_GE(v, histogram_bucket_upper(b - 1)) << v;
  }
}

TEST(HistogramBuckets, RelativeResolutionIsAboutSixPercent) {
  // Log-linear with 16 sub-buckets: bucket width / lower edge <= 1/16.
  for (double v : {1e-8, 0.77, 42.0, 1e6}) {
    const std::size_t b = histogram_bucket(v);
    const double lo = histogram_bucket_upper(b - 1);
    const double hi = histogram_bucket_upper(b);
    EXPECT_LE((hi - lo) / lo, 1.0 / 16 + 1e-12) << v;
  }
}

TEST(Registry, HistogramRecordsEdgeValuesBySpec) {
  SKIP_IF_COMPILED_OUT();
  EnabledScope on;
  Registry registry;
  Histogram h = registry.histogram("h");
  h.record(0.0);
  h.record(5e-324);  // subnormal
  h.record(kInf);
  h.record(std::numeric_limits<double>::max());
  h.record(kNaN);

  const MetricsSnapshot snap = registry.snapshot();
  const HistogramSnapshot& hs = snap.histograms.at("h");
  EXPECT_EQ(hs.count, 4u);  // NaN excluded from the sample count
  EXPECT_EQ(hs.nan_count, 1u);
  EXPECT_EQ(hs.buckets.front(), 2u);  // zero + subnormal
  EXPECT_EQ(hs.buckets.back(), 2u);   // +inf + max-double
  EXPECT_EQ(hs.min, 0.0);
  EXPECT_TRUE(std::isinf(hs.max));

  // JSON must stay parseable despite the inf max/sum: non-finite values
  // are clamped to finite doubles, never emitted as bare inf/nan tokens.
  const lbmv::util::JsonValue doc =
      lbmv::util::JsonValue::parse(snap.to_json());
  const auto& h_doc = doc.at("histograms").at("h");
  EXPECT_DOUBLE_EQ(h_doc.at("count").as_number(), 4.0);
  EXPECT_DOUBLE_EQ(h_doc.at("nan_count").as_number(), 1.0);
  EXPECT_DOUBLE_EQ(h_doc.at("max").as_number(),
                   std::numeric_limits<double>::max());
}

TEST(Registry, QuantilesTrackRecordedRange) {
  SKIP_IF_COMPILED_OUT();
  EnabledScope on;
  Registry registry;
  Histogram h = registry.histogram("h");
  for (int i = 1; i <= 100; ++i) h.record(static_cast<double>(i));
  const HistogramSnapshot hs = registry.snapshot().histograms.at("h");
  EXPECT_EQ(hs.count, 100u);
  EXPECT_DOUBLE_EQ(hs.min, 1.0);
  EXPECT_DOUBLE_EQ(hs.max, 100.0);
  EXPECT_NEAR(hs.mean(), 50.5, 1e-9);
  // Log-linear resolution: quantile returns a bucket upper bound within
  // one bucket (~6%) of the exact order statistic, clamped to [min, max].
  EXPECT_NEAR(hs.quantile(0.5), 50.0, 50.0 * 0.07);
  EXPECT_NEAR(hs.quantile(0.95), 95.0, 95.0 * 0.07);
  EXPECT_DOUBLE_EQ(hs.quantile(1.0), 100.0);
}

TEST(Registry, CounterHandlesAreNoOpsWhenDisabled) {
  set_enabled(false);
  Registry registry;
  Counter c = registry.counter("c");
  Gauge g = registry.gauge("g");
  Histogram h = registry.histogram("h");
  c.inc(7);
  g.add(3.0);
  h.record(1.0);
  const MetricsSnapshot snap = registry.snapshot();
  EXPECT_EQ(snap.counters.at("c"), 0u);
  EXPECT_DOUBLE_EQ(snap.gauges.at("g"), 0.0);
  EXPECT_EQ(snap.histograms.at("h").count, 0u);

  // Default-constructed (unresolved) handles are inert even when enabled.
  EnabledScope on;
  Counter inert;
  inert.inc();  // must not crash
}

TEST(Registry, ShardMergeIsInvariantAcrossThreadCounts) {
  SKIP_IF_COMPILED_OUT();
  EnabledScope on;
  // The same logical workload recorded under different pool sizes (and
  // hence different shard splits) must merge to identical snapshots:
  // counter sums, additive-gauge sums, and histogram bucket contents are
  // all associative and commutative.
  constexpr std::size_t kItems = 400;
  std::vector<MetricsSnapshot> snaps;
  for (std::size_t threads : {1u, 2u, 4u, 8u}) {
    Registry registry;
    Counter c = registry.counter("c");
    Gauge g = registry.gauge("g");
    Histogram h = registry.histogram("h");
    lbmv::util::ThreadPool pool(threads);
    pool.parallel_for(
        0, kItems,
        [&](std::size_t i) {
          c.inc(i % 3 + 1);
          g.add(i % 2 == 0 ? 1.0 : -1.0);
          h.record(static_cast<double>(i % 10) * 0.5);
        },
        /*grain=*/7);
    snaps.push_back(registry.snapshot());
  }
  for (std::size_t i = 1; i < snaps.size(); ++i) {
    EXPECT_EQ(snaps[i].counters.at("c"), snaps[0].counters.at("c"));
    EXPECT_DOUBLE_EQ(snaps[i].gauges.at("g"), snaps[0].gauges.at("g"));
    const HistogramSnapshot& a = snaps[0].histograms.at("h");
    const HistogramSnapshot& b = snaps[i].histograms.at("h");
    EXPECT_EQ(b.count, a.count);
    EXPECT_DOUBLE_EQ(b.sum, a.sum);
    EXPECT_DOUBLE_EQ(b.min, a.min);
    EXPECT_DOUBLE_EQ(b.max, a.max);
    EXPECT_EQ(b.buckets, a.buckets);
  }
}

TEST(Registry, ResetZeroesSamplesButKeepsFamilies) {
  SKIP_IF_COMPILED_OUT();
  EnabledScope on;
  Registry registry;
  Counter c = registry.counter("c");
  Histogram h = registry.histogram("h");
  c.inc(5);
  h.record(2.0);
  registry.reset();
  const MetricsSnapshot snap = registry.snapshot();
  EXPECT_EQ(snap.counters.at("c"), 0u);
  EXPECT_EQ(snap.histograms.at("h").count, 0u);
  // Handles stay valid after reset.
  c.inc();
  EXPECT_EQ(registry.snapshot().counters.at("c"), 1u);
}

TEST(Registry, FindOrRegisterReturnsTheSameFamily) {
  SKIP_IF_COMPILED_OUT();
  EnabledScope on;
  Registry registry;
  Counter a = registry.counter("same");
  Counter b = registry.counter("same");
  a.inc();
  b.inc();
  EXPECT_EQ(registry.snapshot().counters.at("same"), 2u);
}

TEST(Exposition, PrometheusHasTypeLinesAndLabels) {
  SKIP_IF_COMPILED_OUT();
  EnabledScope on;
  Registry registry;
  registry.counter(labeled("family_total", "server", "C1")).inc(3);
  registry.histogram("lat").record(0.5);
  const std::string text = registry.snapshot().to_prometheus();
  EXPECT_NE(text.find("# TYPE family_total counter"), std::string::npos);
  EXPECT_NE(text.find("family_total{server=\"C1\"} 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE lat histogram"), std::string::npos);
  EXPECT_NE(text.find("lat_bucket{le=\"+Inf\"} 1"), std::string::npos);
  EXPECT_NE(text.find("lat_count 1"), std::string::npos);
}

TEST(Exposition, LabeledComposesPrometheusNames) {
  EXPECT_EQ(labeled("f_total", "server", "C2"), "f_total{server=\"C2\"}");
}

}  // namespace

// Differential tests for the vectorized round engine and its block kernels.
//
// The contract under test (DESIGN.md §12): on the linear-family /
// PR-allocator configuration the vectorized engine agrees with the scalar
// kernels to a bounded relative error of 1e-9 on every published value —
// the engine reassociates S, computes both latency totals in closed form
// and multiplies rates by one precomputed share, each an O(n·eps)
// perturbation — while the per-agent leave-one-out and Archer–Tardos tail
// kernels, which apply the scalar operand order exactly, match the scalar
// loops bit-for-bit at equal S.  The block grid and every reduction tree
// are fixed, so outcomes are bit-identical across shard and thread counts,
// and invalid inputs throw the scalar path's diagnostics.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <memory>
#include <span>
#include <vector>

#include "lbmv/alloc/pr_allocator.h"
#include "lbmv/alloc/pr_simd.h"
#include "lbmv/core/archer_tardos.h"
#include "lbmv/core/batch.h"
#include "lbmv/core/comp_bonus.h"
#include "lbmv/core/mechanism.h"
#include "lbmv/core/no_payment.h"
#include "lbmv/core/simd_round.h"
#include "lbmv/core/vcg.h"
#include "lbmv/model/latency.h"
#include "lbmv/util/error.h"
#include "lbmv/util/rng.h"
#include "lbmv/util/simd.h"
#include "lbmv/util/thread_pool.h"

namespace {

using lbmv::core::ArcherTardosMechanism;
using lbmv::core::CompBonusMechanism;
using lbmv::core::CompensationBasis;
using lbmv::core::KernelBackend;
using lbmv::core::Mechanism;
using lbmv::core::MechanismOutcome;
using lbmv::core::NoPaymentMechanism;
using lbmv::core::RoundOptions;
using lbmv::core::RoundWorkspace;
using lbmv::core::VcgMechanism;
using lbmv::core::VectorRule;

/// The engine's documented cross-engine bound (DESIGN.md §12).  The
/// measured deviation is ~1e-13 at n = 10^6; 1e-9 is the contract.
constexpr double kUlpBound = 1e-9;

/// Restore the process-wide backend selector on scope exit so test order
/// never leaks a selector change.
class BackendGuard {
 public:
  BackendGuard() : entry_(lbmv::core::kernel_backend()) {}
  ~BackendGuard() { lbmv::core::set_kernel_backend(entry_); }

 private:
  KernelBackend entry_;
};

struct Profile {
  std::vector<double> bids;
  std::vector<double> executions;
};

/// Log-uniform bids over a wide dynamic range, executions correlated but
/// distinct, so neither plane is degenerate and S spans decades with n.
Profile random_profile(std::size_t n, std::uint64_t seed, double lo = 0.2,
                       double hi = 20.0) {
  lbmv::util::Rng rng(seed);
  Profile p;
  p.bids.resize(n);
  p.executions.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    p.bids[i] = std::exp(rng.uniform(std::log(lo), std::log(hi)));
    p.executions[i] = p.bids[i] * std::exp(rng.uniform(-0.5, 0.5));
  }
  return p;
}

void run_with(const Mechanism& m, KernelBackend backend, double rate,
              const Profile& p, MechanismOutcome& out, RoundWorkspace& ws,
              const RoundOptions& options = {}) {
  const lbmv::model::LinearFamily family;
  lbmv::core::set_kernel_backend(backend);
  m.run_into(family, rate, p.bids, p.executions, out, ws, options);
}

double rel_err(double a, double b, double floor = 1e-300) {
  const double scale = std::max({std::abs(a), std::abs(b), floor});
  return std::abs(a - b) / scale;
}

/// Largest relative discrepancy over every published value of two outcomes.
/// \p floor sets the smallest magnitude a discrepancy is measured against:
/// 0 demands per-field relative agreement; passing the round's latency
/// scale L* instead measures deviations against the magnitude the payment
/// terms are differences *of*, which is the meaningful bound when extreme
/// bid ranges make a payment's own magnitude cancel (e.g. VCG's externality
/// of a negligible agent).
double max_outcome_rel_err(const MechanismOutcome& a,
                           const MechanismOutcome& b, double floor = 0.0) {
  EXPECT_EQ(a.agents.size(), b.agents.size());
  EXPECT_EQ(a.allocation.size(), b.allocation.size());
  double worst = 0.0;
  worst = std::max(worst, rel_err(a.actual_latency, b.actual_latency, floor));
  worst = std::max(worst,
                   rel_err(a.reported_latency, b.reported_latency, floor));
  for (std::size_t i = 0; i < a.agents.size(); ++i) {
    worst = std::max(worst, rel_err(a.allocation[i], b.allocation[i]));
    worst = std::max(worst, rel_err(a.agents[i].allocation,
                                    b.agents[i].allocation));
    worst = std::max(worst, rel_err(a.agents[i].compensation,
                                    b.agents[i].compensation, floor));
    worst = std::max(worst,
                     rel_err(a.agents[i].bonus, b.agents[i].bonus, floor));
    worst = std::max(worst,
                     rel_err(a.agents[i].payment, b.agents[i].payment, floor));
    worst = std::max(worst, rel_err(a.agents[i].valuation,
                                    b.agents[i].valuation, floor));
    worst = std::max(worst,
                     rel_err(a.agents[i].utility, b.agents[i].utility, floor));
  }
  return worst;
}

std::vector<std::unique_ptr<Mechanism>> all_vector_mechanisms() {
  std::vector<std::unique_ptr<Mechanism>> ms;
  ms.push_back(std::make_unique<CompBonusMechanism>());  // execution basis
  ms.push_back(std::make_unique<CompBonusMechanism>(
      lbmv::core::default_allocator(), CompensationBasis::kBid));
  ms.push_back(std::make_unique<VcgMechanism>());
  ms.push_back(std::make_unique<ArcherTardosMechanism>());
  ms.push_back(std::make_unique<NoPaymentMechanism>());
  return ms;
}

// ---------------------------------------------------------------------------
// Differential: vectorized vs scalar engine, every mechanism, both bases.

TEST(SimdKernels, MatchesScalarAcrossMechanismsAndSizes) {
  BackendGuard guard;
  // Sizes cover: below one vector, exact vector multiples, every tail
  // residue mod 4 (the lane count), and spans into multiple 8-agent steps.
  const std::size_t sizes[] = {2, 3, 4, 5, 7, 8, 9, 64, 100, 257, 1023,
                               1024, 1025};
  const auto mechanisms = all_vector_mechanisms();
  for (const auto& m : mechanisms) {
    ASSERT_NE(m->vector_rule(), VectorRule::kNone) << m->name();
    for (const std::size_t n : sizes) {
      const Profile p = random_profile(n, 1000 + n);
      MechanismOutcome scalar_out, simd_out;
      RoundWorkspace scalar_ws, simd_ws;
      run_with(*m, KernelBackend::kScalar, 9.0, p, scalar_out, scalar_ws);
      run_with(*m, KernelBackend::kVectorized, 9.0, p, simd_out, simd_ws);
      EXPECT_LE(max_outcome_rel_err(scalar_out, simd_out), kUlpBound)
          << m->name() << " n=" << n;
    }
  }
}

TEST(SimdKernels, MatchesScalarOnBoundaryBids) {
  BackendGuard guard;
  // Extreme dynamic range: 1e-8 .. 1e8 bids stress S against individual
  // 1/b_i and push the leave-one-out denominators toward the guard.
  const auto mechanisms = all_vector_mechanisms();
  for (const auto& m : mechanisms) {
    const Profile p = random_profile(301, 77, 1e-8, 1e8);
    MechanismOutcome scalar_out, simd_out;
    RoundWorkspace scalar_ws, simd_ws;
    run_with(*m, KernelBackend::kScalar, 3.5, p, scalar_out, scalar_ws);
    run_with(*m, KernelBackend::kVectorized, 3.5, p, simd_out, simd_ws);
    // Measured against the round's latency scale: a 10^16 dynamic range in
    // bids makes some payments (an externality of a negligible agent)
    // cancel below their constituents, where per-field relative agreement
    // is not a property either engine has.
    const double floor = std::abs(scalar_out.reported_latency);
    EXPECT_LE(max_outcome_rel_err(scalar_out, simd_out, floor), kUlpBound)
        << m->name();
  }
}

// ---------------------------------------------------------------------------
// Bit-identical pieces: the per-agent leave-one-out and tail kernels apply
// the scalar operand order exactly, so at equal S they are not merely close
// but equal.

TEST(SimdKernels, LeaveOneOutBlockBitIdenticalAtEqualSum) {
  const std::size_t n = 1027;  // forces a scalar tail
  const Profile p = random_profile(n, 5);
  std::vector<double> inv(n);
  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    inv[i] = 1.0 / p.bids[i];
    sum += inv[i];
  }
  const double rate = 4.0;
  const double min_gap = sum * lbmv::alloc::kLeaveOneOutMinRelativeGap;
  std::vector<double> block(n), scalar(n);
  ASSERT_TRUE(lbmv::alloc::simd::pr_leave_one_out_block(inv, sum, rate,
                                                        min_gap, block));
  const double r2 = rate * rate;
  for (std::size_t i = 0; i < n; ++i) scalar[i] = r2 / (sum - inv[i]);
  EXPECT_EQ(0, std::memcmp(block.data(), scalar.data(), n * sizeof(double)));
}

TEST(SimdKernels, ArcherTardosTailBlockBitIdenticalAtEqualSum) {
  const std::size_t n = 1027;
  const Profile p = random_profile(n, 6);
  std::vector<double> inv(n);
  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    inv[i] = 1.0 / p.bids[i];
    sum += inv[i];
  }
  const double rate = 4.0;
  std::vector<double> block(n), scalar(n);
  ASSERT_TRUE(lbmv::alloc::simd::archer_tardos_tail_block(p.bids, inv, sum,
                                                          rate, block));
  for (std::size_t i = 0; i < n; ++i) {
    scalar[i] = lbmv::core::archer_tardos_tail_integral(p.bids[i],
                                                        sum - inv[i], rate);
  }
  EXPECT_EQ(0, std::memcmp(block.data(), scalar.data(), n * sizeof(double)));
}

TEST(SimdKernels, ReciprocalBlockFlagsNonPositiveLanes) {
  Profile p = random_profile(37, 8);
  std::vector<double> inv(37);
  auto part = lbmv::alloc::simd::pr_reciprocal_block(p.bids, p.executions, inv);
  EXPECT_TRUE(part.bids_positive);
  EXPECT_TRUE(part.executions_positive);
  p.bids[17] = 0.0;
  p.executions[36] = std::numeric_limits<double>::quiet_NaN();  // tail lane
  part = lbmv::alloc::simd::pr_reciprocal_block(p.bids, p.executions, inv);
  EXPECT_FALSE(part.bids_positive);
  EXPECT_FALSE(part.executions_positive);
}

// ---------------------------------------------------------------------------
// Shard invariance: the fixed block grid and block-order reduction make the
// outcome bit-identical for ANY shard count on ANY pool.

TEST(SimdKernels, ShardCountNeverChangesBits) {
  BackendGuard guard;
  // Spans four blocks (kShardBlock = 4096) with a ragged final block.
  const std::size_t n = 3 * lbmv::core::kShardBlock + 1234;
  const Profile p = random_profile(n, 11);
  const auto mechanisms = all_vector_mechanisms();
  lbmv::util::ThreadPool two(2), four(4);
  for (const auto& m : mechanisms) {
    MechanismOutcome serial_out;
    RoundWorkspace serial_ws;
    run_with(*m, KernelBackend::kVectorized, 7.0, p, serial_out, serial_ws,
             RoundOptions{1, nullptr});
    const struct {
      std::size_t shards;
      lbmv::util::ThreadPool* pool;
    } fanouts[] = {{2, &two}, {8, &four}, {0, &four}};
    for (const auto& f : fanouts) {
      MechanismOutcome out;
      RoundWorkspace ws;
      run_with(*m, KernelBackend::kVectorized, 7.0, p, out, ws,
               RoundOptions{f.shards, f.pool});
      ASSERT_EQ(out.agents.size(), serial_out.agents.size());
      EXPECT_EQ(0, std::memcmp(out.agents.data(), serial_out.agents.data(),
                               n * sizeof(lbmv::core::AgentOutcome)))
          << m->name() << " shards=" << f.shards;
      EXPECT_EQ(0, std::memcmp(out.allocation.rates().data(),
                               serial_out.allocation.rates().data(),
                               n * sizeof(double)))
          << m->name() << " shards=" << f.shards;
      EXPECT_EQ(out.actual_latency, serial_out.actual_latency) << m->name();
      EXPECT_EQ(out.reported_latency, serial_out.reported_latency)
          << m->name();
    }
  }
}

// ---------------------------------------------------------------------------
// Workspace reuse across different mechanisms and sizes stays consistent
// (the plane-recycling and 4K-dodge offsets must never leak stale state).

TEST(SimdKernels, WorkspaceReuseAcrossSizesAndRules) {
  BackendGuard guard;
  const auto mechanisms = all_vector_mechanisms();
  MechanismOutcome simd_out;
  RoundWorkspace simd_ws;  // shared across every run below
  const std::size_t sizes[] = {1024, 17, 513, 1024, 64};
  for (const std::size_t n : sizes) {
    for (const auto& m : mechanisms) {
      const Profile p = random_profile(n, 2000 + n);
      MechanismOutcome scalar_out;
      RoundWorkspace scalar_ws;
      run_with(*m, KernelBackend::kScalar, 5.0, p, scalar_out, scalar_ws);
      run_with(*m, KernelBackend::kVectorized, 5.0, p, simd_out, simd_ws);
      EXPECT_LE(max_outcome_rel_err(scalar_out, simd_out), kUlpBound)
          << m->name() << " n=" << n;
    }
  }
}

// ---------------------------------------------------------------------------
// Diagnostics: the vectorized engine re-runs scalar validation on mask
// failure, so messages match the scalar path's byte for byte.

TEST(SimdKernels, InvalidInputsThrowScalarDiagnostics) {
  BackendGuard guard;
  lbmv::core::set_kernel_backend(KernelBackend::kVectorized);
  const lbmv::model::LinearFamily family;
  CompBonusMechanism m;
  MechanismOutcome out;
  RoundWorkspace ws;
  {
    Profile p = random_profile(100, 21);
    p.bids[63] = -1.0;
    EXPECT_THROW(m.run_into(family, 2.0, p.bids, p.executions, out, ws),
                 lbmv::util::PreconditionError);
  }
  {
    Profile p = random_profile(100, 22);
    p.executions[99] = 0.0;  // scalar-tail lane
    EXPECT_THROW(m.run_into(family, 2.0, p.bids, p.executions, out, ws),
                 lbmv::util::PreconditionError);
  }
  {
    // A subnormal bid overflows 1/b to infinity: the scalar path dies in
    // the Allocation constructor, and the vectorized engine must route its
    // masked failure through the same checked constructor.
    Profile p = random_profile(8, 23);
    p.bids[3] = 5e-324;
    try {
      m.run_into(family, 2.0, p.bids, p.executions, out, ws);
      FAIL() << "expected non-finite rates to throw";
    } catch (const lbmv::util::PreconditionError& e) {
      EXPECT_NE(std::string(e.what()).find("finite"), std::string::npos);
    }
  }
}

// ---------------------------------------------------------------------------
// Backend plumbing.

TEST(SimdKernels, BackendSelectorAndNameAreCoherent) {
  BackendGuard guard;
  const char* name = lbmv::core::vector_backend_name();
  ASSERT_NE(name, nullptr);
  if (lbmv::util::simd::kAvx2) {
    EXPECT_STREQ(name, "avx2");
    EXPECT_EQ(lbmv::core::kernel_backend(), KernelBackend::kVectorized);
  } else {
    EXPECT_STREQ(name, "scalar-4lane");
  }
  lbmv::core::set_kernel_backend(KernelBackend::kScalar);
  EXPECT_EQ(lbmv::core::kernel_backend(), KernelBackend::kScalar);
  lbmv::core::set_kernel_backend(KernelBackend::kVectorized);
  EXPECT_EQ(lbmv::core::kernel_backend(), KernelBackend::kVectorized);
}

TEST(SimdKernels, MaskPrimitivesMatchOrderedCompareSemantics) {
  namespace v = lbmv::util::simd;
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const v::DVec a = v::load((const double[]){1.0, 2.0, 3.0, 4.0});
  const v::DVec b = v::load((const double[]){0.5, 2.0, nan, -1.0});
  // a > b holds on lanes 0 and 3 only: equal lanes and NaN lanes fail.
  v::DVec m = v::mask_greater(a, b);
  EXPECT_FALSE(v::mask_all_true(m));
  EXPECT_TRUE(v::mask_all_true(v::mask_all()));
  EXPECT_FALSE(v::mask_all_true(v::mask_and(v::mask_all(), m)));
  const v::DVec big = v::set1(100.0);
  EXPECT_TRUE(v::mask_all_true(v::mask_greater(big, a)));
  EXPECT_TRUE(v::all_greater(big, a));
  EXPECT_FALSE(v::all_greater(big, v::set1(nan)));
}

}  // namespace

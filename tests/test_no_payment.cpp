// Tests for the classical no-payment baseline: the protocol the paper's
// mechanism exists to replace.  Its defining property is that lying pays.

#include <gtest/gtest.h>

#include "lbmv/core/no_payment.h"
#include "lbmv/model/bids.h"

namespace {

using lbmv::core::NoPaymentMechanism;
using lbmv::model::BidProfile;
using lbmv::model::SystemConfig;

TEST(NoPayment, AllPaymentsAreZero) {
  const SystemConfig config({1.0, 2.0, 5.0}, 10.0);
  NoPaymentMechanism mechanism;
  const auto outcome =
      mechanism.run(config, BidProfile::deviate(config, 0, 3.0, 2.0));
  for (const auto& agent : outcome.agents) {
    EXPECT_DOUBLE_EQ(agent.payment, 0.0);
    EXPECT_DOUBLE_EQ(agent.compensation, 0.0);
    EXPECT_DOUBLE_EQ(agent.bonus, 0.0);
    EXPECT_DOUBLE_EQ(agent.utility, agent.valuation);
  }
}

TEST(NoPayment, TruthfulUtilityIsNegative) {
  // Without payments, participating at all costs the agent its latency.
  const SystemConfig config({1.0, 2.0}, 4.0);
  NoPaymentMechanism mechanism;
  const auto outcome = mechanism.run(config, BidProfile::truthful(config));
  for (const auto& agent : outcome.agents) {
    EXPECT_LT(agent.utility, 0.0);
  }
}

TEST(NoPayment, OverbiddingStrictlyImprovesUtility) {
  // The manipulation the paper's introduction warns about: pretend to be
  // slow, receive fewer jobs, pay nothing — utility rises toward zero.
  const SystemConfig config({1.0, 2.0, 5.0}, 10.0);
  NoPaymentMechanism mechanism;
  const double truthful_u =
      mechanism.run(config, BidProfile::truthful(config)).agents[0].utility;
  double prev = truthful_u;
  for (double mult : {2.0, 5.0, 20.0}) {
    const auto outcome =
        mechanism.run(config, BidProfile::deviate(config, 0, mult, 1.0));
    EXPECT_GT(outcome.agents[0].utility, prev);
    prev = outcome.agents[0].utility;
  }
}

TEST(NoPayment, ManipulationDegradesTheSystem) {
  // ... and the same manipulation strictly increases total latency.
  const SystemConfig config({1.0, 2.0, 5.0}, 10.0);
  NoPaymentMechanism mechanism;
  const double optimal =
      mechanism.run(config, BidProfile::truthful(config)).actual_latency;
  const auto manipulated =
      mechanism.run(config, BidProfile::deviate(config, 0, 5.0, 1.0));
  EXPECT_GT(manipulated.actual_latency, optimal);
}

TEST(NoPayment, DoesNotClaimVerification) {
  NoPaymentMechanism mechanism;
  EXPECT_FALSE(mechanism.uses_verification());
  EXPECT_EQ(mechanism.name(), "no-payment");
}

}  // namespace

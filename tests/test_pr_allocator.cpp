// Tests for the PR algorithm (paper Theorem 2.1), including the pinned
// numbers reconstructed from the paper's evaluation section.

#include <gtest/gtest.h>

#include <vector>

#include "lbmv/alloc/pr_allocator.h"
#include "lbmv/analysis/paper_config.h"
#include "lbmv/model/system_config.h"
#include "lbmv/util/error.h"

namespace {

using lbmv::alloc::pr_allocate;
using lbmv::alloc::pr_optimal_latency;
using lbmv::alloc::PRAllocator;
using lbmv::model::Allocation;

TEST(PrAllocate, ProportionalToProcessingRates) {
  // Types (1, 2): computer 0 is twice as fast and gets twice the jobs.
  const std::vector<double> t{1.0, 2.0};
  const Allocation x = pr_allocate(t, 9.0);
  EXPECT_NEAR(x[0], 6.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(PrAllocate, HomogeneousSystemSplitsEvenly) {
  const std::vector<double> t{3.0, 3.0, 3.0, 3.0};
  const Allocation x = pr_allocate(t, 8.0);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_NEAR(x[i], 2.0, 1e-12);
}

TEST(PrAllocate, SingleComputerTakesEverything) {
  const std::vector<double> t{5.0};
  const Allocation x = pr_allocate(t, 7.0);
  EXPECT_DOUBLE_EQ(x[0], 7.0);
}

TEST(PrAllocate, AlwaysFeasible) {
  const std::vector<double> t{0.3, 1.0, 2.5, 100.0};
  const Allocation x = pr_allocate(t, 17.0);
  EXPECT_TRUE(x.is_feasible(17.0));
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_GT(x[i], 0.0);
}

TEST(PrAllocate, ScalesLinearlyWithArrivalRate) {
  const std::vector<double> t{1.0, 4.0};
  const Allocation x1 = pr_allocate(t, 10.0);
  const Allocation x2 = pr_allocate(t, 20.0);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_NEAR(x2[i], 2.0 * x1[i], 1e-12);
  }
}

TEST(PrOptimalLatency, MatchesEquation4) {
  // L* = R^2 / sum(1/t).
  const std::vector<double> t{1.0, 2.0};
  EXPECT_NEAR(pr_optimal_latency(t, 9.0), 81.0 / 1.5, 1e-12);
}

TEST(PrOptimalLatency, EqualsLatencyOfPrAllocation) {
  const std::vector<double> t{0.7, 1.3, 4.0};
  const double R = 12.0;
  const Allocation x = pr_allocate(t, R);
  EXPECT_NEAR(lbmv::model::total_latency_linear(x, t),
              pr_optimal_latency(t, R), 1e-10);
}

TEST(PrOptimalLatency, PaperTrue1ValueIs78_43) {
  // The headline pinned number: Table 1 config at R = 20 gives L* = 78.43.
  const auto config = lbmv::analysis::paper_table1_config();
  const double l_star = pr_optimal_latency(
      std::vector<double>(config.true_values().begin(),
                          config.true_values().end()),
      config.arrival_rate());
  EXPECT_NEAR(l_star, 400.0 / 5.1, 1e-10);
  EXPECT_NEAR(l_star, 78.43, 0.005);  // the paper reports 78.43
}

TEST(PrOptimalLatency, AnyOtherFeasibleAllocationIsWorse) {
  const std::vector<double> t{1.0, 2.0, 5.0};
  const double R = 10.0;
  const double l_star = pr_optimal_latency(t, R);
  // Perturb the optimal allocation in a conservation-preserving way.
  const Allocation x = pr_allocate(t, R);
  for (double eps : {0.01, 0.1, 0.5}) {
    Allocation perturbed({x[0] + eps, x[1] - eps, x[2]});
    EXPECT_GT(lbmv::model::total_latency_linear(perturbed, t), l_star);
  }
}

TEST(PrAllocate, RejectsBadInput) {
  EXPECT_THROW((void)pr_allocate({}, 1.0), lbmv::util::PreconditionError);
  EXPECT_THROW((void)pr_allocate(std::vector<double>{1.0}, 0.0),
               lbmv::util::PreconditionError);
  EXPECT_THROW((void)pr_allocate(std::vector<double>{1.0, -1.0}, 1.0),
               lbmv::util::PreconditionError);
}

TEST(PRAllocatorInterface, DelegatesToClosedForm) {
  PRAllocator allocator;
  lbmv::model::LinearFamily family;
  const std::vector<double> t{1.0, 2.0};
  const Allocation direct = pr_allocate(t, 9.0);
  const Allocation via = allocator.allocate(family, t, 9.0);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_DOUBLE_EQ(via[i], direct[i]);
  }
  EXPECT_NEAR(allocator.optimal_latency(family, t, 9.0),
              pr_optimal_latency(t, 9.0), 1e-12);
  EXPECT_EQ(allocator.name(), "pr");
}

TEST(PRAllocatorInterface, NonLinearFamilyEvaluatesActualCurves) {
  // On a non-linear family, the PR split is still returned but its reported
  // latency is evaluated against the true curves (and exceeds the optimum).
  PRAllocator pr;
  lbmv::model::PowerFamily family(2.0);
  const std::vector<double> t{1.0, 3.0};
  const Allocation x = pr.allocate(family, t, 4.0);
  const auto fns = [&] {
    std::vector<std::unique_ptr<lbmv::model::LatencyFunction>> v;
    for (double ti : t) v.push_back(family.make(ti));
    return v;
  }();
  EXPECT_NEAR(pr.optimal_latency(family, t, 4.0),
              lbmv::model::total_latency(x, fns), 1e-12);
}

}  // namespace

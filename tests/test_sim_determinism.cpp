// Differential determinism: the typed event loop (engine.h) must reproduce
// the seed `std::function` loop (legacy_engine.h) bit-for-bit — identical
// completion traces (job ids, arrival/start/finish times) for fixed seeds
// across every ServiceModel.  This is the contract that made the hot-path
// rewrite safe: same RNG streams, same (time, seq) event ordering, so every
// downstream estimate, payment and metric is unchanged.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "lbmv/sim/engine.h"
#include "lbmv/sim/job_source.h"
#include "lbmv/sim/legacy_engine.h"
#include "lbmv/sim/server.h"
#include "lbmv/util/rng.h"

namespace {

using namespace lbmv::sim;
using lbmv::util::Rng;

struct Workload {
  std::vector<double> execution_values{0.02, 0.05, 0.11, 0.4};
  std::vector<double> rates{2.0, 1.5, 1.0, 0.5};
  double horizon = 500.0;
  std::uint64_t seed = 1234;
};

/// Run the typed stack; returns per-server completion traces.
std::vector<std::vector<Completion>> run_typed(const Workload& w,
                                               ServiceModel model) {
  Rng rng(w.seed);
  Simulation sim;
  std::vector<std::unique_ptr<Server>> servers;
  std::vector<Server*> ptrs;
  for (std::size_t i = 0; i < w.execution_values.size(); ++i) {
    servers.push_back(std::make_unique<Server>(
        sim, "C" + std::to_string(i + 1), w.execution_values[i], model,
        rng.split(i + 1)));
    ptrs.push_back(servers.back().get());
  }
  JobSource source(sim, ptrs, w.rates, w.horizon, rng.split(0));
  source.start();
  sim.run();
  std::vector<std::vector<Completion>> traces;
  for (const Server* s : ptrs) traces.push_back(s->completions());
  return traces;
}

/// Run the preserved seed stack on the identical workload and RNG streams.
std::vector<std::vector<Completion>> run_legacy(const Workload& w,
                                                ServiceModel model) {
  Rng rng(w.seed);
  legacy::Simulation sim;
  std::vector<std::unique_ptr<legacy::Server>> servers;
  std::vector<legacy::Server*> ptrs;
  for (std::size_t i = 0; i < w.execution_values.size(); ++i) {
    servers.push_back(std::make_unique<legacy::Server>(
        sim, "C" + std::to_string(i + 1), w.execution_values[i], model,
        rng.split(i + 1)));
    ptrs.push_back(servers.back().get());
  }
  legacy::JobSource source(sim, ptrs, w.rates, w.horizon, rng.split(0));
  source.start();
  sim.run();
  std::vector<std::vector<Completion>> traces;
  for (const legacy::Server* s : ptrs) traces.push_back(s->completions());
  return traces;
}

void expect_identical(const std::vector<std::vector<Completion>>& typed,
                      const std::vector<std::vector<Completion>>& legacy_t) {
  ASSERT_EQ(typed.size(), legacy_t.size());
  for (std::size_t s = 0; s < typed.size(); ++s) {
    ASSERT_EQ(typed[s].size(), legacy_t[s].size()) << "server " << s;
    ASSERT_FALSE(typed[s].empty()) << "workload produced no jobs; weak test";
    for (std::size_t j = 0; j < typed[s].size(); ++j) {
      const Completion& a = typed[s][j];
      const Completion& b = legacy_t[s][j];
      // Bit-for-bit: exact double equality, not approximate.
      EXPECT_EQ(a.job_id, b.job_id) << "server " << s << " job " << j;
      EXPECT_EQ(a.arrival, b.arrival) << "server " << s << " job " << j;
      EXPECT_EQ(a.start, b.start) << "server " << s << " job " << j;
      EXPECT_EQ(a.finish, b.finish) << "server " << s << " job " << j;
    }
  }
}

TEST(SimDeterminism, TypedLoopMatchesSeedLoopExponential) {
  const Workload w;
  expect_identical(run_typed(w, ServiceModel::kExponential),
                   run_legacy(w, ServiceModel::kExponential));
}

TEST(SimDeterminism, TypedLoopMatchesSeedLoopDeterministic) {
  const Workload w;
  expect_identical(run_typed(w, ServiceModel::kDeterministic),
                   run_legacy(w, ServiceModel::kDeterministic));
}

TEST(SimDeterminism, TypedLoopMatchesSeedLoopErlang2) {
  const Workload w;
  expect_identical(run_typed(w, ServiceModel::kErlang2),
                   run_legacy(w, ServiceModel::kErlang2));
}

TEST(SimDeterminism, HoldsAcrossSeedsAndLoads) {
  for (const std::uint64_t seed : {7ull, 42ull, 90210ull}) {
    for (const double load_scale : {0.5, 2.0}) {
      Workload w;
      w.seed = seed;
      for (double& r : w.rates) r *= load_scale;
      w.horizon = 200.0;
      expect_identical(run_typed(w, ServiceModel::kExponential),
                       run_legacy(w, ServiceModel::kExponential));
    }
  }
}

TEST(SimDeterminism, TypedLoopIsSelfDeterministic) {
  // Two identical typed runs agree exactly (no hidden global state).
  const Workload w;
  expect_identical(run_typed(w, ServiceModel::kErlang2),
                   run_typed(w, ServiceModel::kErlang2));
}

TEST(SimDeterminism, ProcessedEventCountsMatch) {
  // Event-for-event equivalence, not just trace equivalence: both loops
  // schedule one arrival event per job plus one completion event per job.
  const Workload w;
  Rng rng(w.seed);
  Simulation typed_sim;
  legacy::Simulation legacy_sim;
  {
    std::vector<std::unique_ptr<Server>> servers;
    std::vector<Server*> ptrs;
    for (std::size_t i = 0; i < w.execution_values.size(); ++i) {
      servers.push_back(std::make_unique<Server>(
          typed_sim, "C", w.execution_values[i], ServiceModel::kExponential,
          rng.split(i + 1)));
      ptrs.push_back(servers.back().get());
    }
    JobSource source(typed_sim, ptrs, w.rates, w.horizon, rng.split(0));
    source.start();
    typed_sim.run();
  }
  {
    std::vector<std::unique_ptr<legacy::Server>> servers;
    std::vector<legacy::Server*> ptrs;
    for (std::size_t i = 0; i < w.execution_values.size(); ++i) {
      servers.push_back(std::make_unique<legacy::Server>(
          legacy_sim, "C", w.execution_values[i], ServiceModel::kExponential,
          rng.split(i + 1)));
      ptrs.push_back(servers.back().get());
    }
    legacy::JobSource source(legacy_sim, ptrs, w.rates, w.horizon,
                             rng.split(0));
    source.start();
    legacy_sim.run();
  }
  EXPECT_EQ(typed_sim.processed(), legacy_sim.processed());
  EXPECT_EQ(typed_sim.now(), legacy_sim.now());
}

}  // namespace

// Property tests for the game-theoretic audits: Theorem 3.1 (truthfulness)
// and Theorem 3.2 (voluntary participation), plus a precise documentation
// of the theorem's scope boundary (inconsistent opponents).

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "lbmv/analysis/paper_config.h"
#include "lbmv/core/audit.h"
#include "lbmv/core/comp_bonus.h"
#include "lbmv/core/no_payment.h"
#include "lbmv/core/vcg.h"
#include "lbmv/util/error.h"
#include "lbmv/util/rng.h"

namespace {

using lbmv::analysis::paper_table1_config;
using lbmv::core::AuditOptions;
using lbmv::core::CompBonusMechanism;
using lbmv::core::NoPaymentMechanism;
using lbmv::core::TruthfulnessAuditor;
using lbmv::core::VcgMechanism;
using lbmv::model::BidProfile;
using lbmv::model::SystemConfig;

TEST(Audit, PaperConfigCompBonusIsTruthfulForEveryAgent) {
  const SystemConfig config = paper_table1_config();
  CompBonusMechanism mechanism;
  TruthfulnessAuditor auditor(mechanism);
  for (const auto& report : auditor.audit_all(config)) {
    EXPECT_TRUE(report.truthful_dominant(1e-7))
        << "agent " << report.agent << " gains " << report.max_gain
        << " at bid x" << report.best.bid_mult << ", exec x"
        << report.best.exec_mult;
  }
}

TEST(Audit, VoluntaryParticipationHoldsOnPaperConfig) {
  const SystemConfig config = paper_table1_config();
  CompBonusMechanism mechanism;
  EXPECT_TRUE(voluntary_participation_holds(mechanism, config));
  for (double u : truthful_utilities(mechanism, config)) {
    EXPECT_GT(u, 0.0);  // strictly positive here: every computer contributes
  }
}

TEST(Audit, NoPaymentMechanismFailsTheAudit) {
  const SystemConfig config = paper_table1_config();
  NoPaymentMechanism mechanism;
  TruthfulnessAuditor auditor(mechanism);
  const auto report = auditor.audit_agent(config, 0);
  EXPECT_FALSE(report.truthful_dominant(1e-7));
  EXPECT_GT(report.max_gain, 0.0);
  EXPECT_GT(report.best.bid_mult, 1.0);  // the profitable lie is overbidding
}

TEST(Audit, KeepGridRetainsEveryDeviation) {
  const SystemConfig config({1.0, 2.0}, 4.0);
  CompBonusMechanism mechanism;
  TruthfulnessAuditor auditor(mechanism);
  AuditOptions options;
  options.keep_grid = true;
  options.parallel = false;
  const auto report = auditor.audit_agent(config, 0, options);
  EXPECT_EQ(report.grid.size(),
            options.bid_multipliers.size() * options.exec_multipliers.size());
}

TEST(Audit, ParallelAndSequentialAgree) {
  const SystemConfig config({1.0, 2.0, 5.0}, 12.0);
  CompBonusMechanism mechanism;
  TruthfulnessAuditor auditor(mechanism);
  AuditOptions seq;
  seq.parallel = false;
  AuditOptions par;
  par.parallel = true;
  const auto a = auditor.audit_agent(config, 1, seq);
  const auto b = auditor.audit_agent(config, 1, par);
  EXPECT_DOUBLE_EQ(a.truthful_utility, b.truthful_utility);
  EXPECT_DOUBLE_EQ(a.max_gain, b.max_gain);
}

TEST(Audit, RejectsSubCapacityExecutionMultipliers) {
  const SystemConfig config({1.0, 2.0}, 4.0);
  CompBonusMechanism mechanism;
  TruthfulnessAuditor auditor(mechanism);
  AuditOptions options;
  options.exec_multipliers = {0.5};
  EXPECT_THROW((void)auditor.audit_agent(config, 0, options),
               lbmv::util::PreconditionError);
}

TEST(Audit, TruthfulnessHoldsAgainstConsistentOverbiddingOpponents) {
  // Theorem 3.1 quantifies over all opposing *behaviours*; agents whose
  // execution equals their (over-)bid are realisable, and truth must remain
  // dominant against them.
  const SystemConfig config({1.0, 2.0, 5.0}, 12.0);
  CompBonusMechanism mechanism;
  TruthfulnessAuditor auditor(mechanism);
  BidProfile base = BidProfile::truthful(config);
  base.bids[1] = 4.0;  // opponent overbids ...
  base.executions[1] = 4.0;  // ... and consistently executes at the bid
  const auto report =
      auditor.audit_agent(config, 0, base, AuditOptions{});
  EXPECT_TRUE(report.truthful_dominant(1e-7))
      << "gain " << report.max_gain;
}

TEST(Audit, ScopeBoundary_InconsistentOpponentBreaksDominance) {
  // Documented limitation (see EXPERIMENTS.md): an *underbidding* opponent
  // is necessarily inconsistent (it cannot execute faster than its true
  // capacity), and against such behaviour truth-telling need not be a best
  // response — the agent can profitably re-balance the system.  This pins
  // the theorem's actual scope rather than the paper's informal statement.
  const SystemConfig config({1.0, 1.0}, 2.0);
  CompBonusMechanism mechanism;
  TruthfulnessAuditor auditor(mechanism);
  BidProfile base = BidProfile::truthful(config);
  base.bids[1] = 0.5;        // opponent claims to be twice as fast ...
  base.executions[1] = 1.0;  // ... but can only execute at its capacity
  AuditOptions options;
  options.bid_multipliers = {0.25, 0.5, 0.75, 1.0, 1.5, 2.0};
  const auto report = auditor.audit_agent(config, 0, base, options);
  EXPECT_GT(report.max_gain, 1e-6);
  EXPECT_LT(report.best.bid_mult, 1.0);  // best response shades the bid down
}

TEST(CoalitionAudit, PairsCanProfitablyColludeUnderCompBonus) {
  // Unilateral truthfulness does not extend to coalitions: two agents who
  // can share payments gain by mutually inflating bids (each inflates the
  // other's leave-one-out counterfactual).  Known VCG-family limitation,
  // quantified in bench_coalition.
  const SystemConfig config = paper_table1_config();
  CompBonusMechanism mechanism;
  lbmv::core::CoalitionAuditor auditor(mechanism);
  const auto report = auditor.audit_pair(config, 0, 1);
  EXPECT_FALSE(report.coalition_proof(1e-6));
  EXPECT_GT(report.max_joint_gain, 1.0);
  // Both partners overbid in the best deviation...
  EXPECT_GT(report.best.bid_mult_a, 1.0);
  EXPECT_GT(report.best.bid_mult_b, 1.0);
  // ... but neither slacks: verification closes the execution channel.
  EXPECT_DOUBLE_EQ(report.best.exec_mult_a, 1.0);
  EXPECT_DOUBLE_EQ(report.best.exec_mult_b, 1.0);
}

TEST(CoalitionAudit, JointTruthEqualsSumOfIndividualTruthfulUtilities) {
  const SystemConfig config({1.0, 2.0, 4.0}, 8.0);
  CompBonusMechanism mechanism;
  lbmv::core::CoalitionAuditor auditor(mechanism);
  const auto report = auditor.audit_pair(config, 0, 2);
  const auto utilities = truthful_utilities(mechanism, config);
  EXPECT_NEAR(report.truthful_joint_utility, utilities[0] + utilities[2],
              1e-10);
}

TEST(CoalitionAudit, ValidatesArguments) {
  const SystemConfig config({1.0, 2.0}, 4.0);
  CompBonusMechanism mechanism;
  lbmv::core::CoalitionAuditor auditor(mechanism);
  EXPECT_THROW((void)auditor.audit_pair(config, 0, 0),
               lbmv::util::PreconditionError);
  EXPECT_THROW((void)auditor.audit_pair(config, 0, 7),
               lbmv::util::PreconditionError);
  AuditOptions bad;
  bad.exec_multipliers = {0.5};
  EXPECT_THROW((void)auditor.audit_pair(config, 0, 1, bad),
               lbmv::util::PreconditionError);
}

TEST(CoalitionAudit, ParallelAndSequentialAgree) {
  const SystemConfig config({1.0, 2.0, 4.0}, 8.0);
  CompBonusMechanism mechanism;
  lbmv::core::CoalitionAuditor auditor(mechanism);
  AuditOptions seq;
  seq.parallel = false;
  AuditOptions par;
  par.parallel = true;
  const auto a = auditor.audit_pair(config, 0, 1, seq);
  const auto b = auditor.audit_pair(config, 0, 1, par);
  EXPECT_DOUBLE_EQ(a.max_joint_gain, b.max_joint_gain);
  EXPECT_DOUBLE_EQ(a.best.joint_utility, b.best.joint_utility);
}

// ---------------------------------------------------------------------------
// Parameterized property sweep over random instances.

class RandomSystemAudit : public ::testing::TestWithParam<std::uint64_t> {};

SystemConfig random_config(std::uint64_t seed, std::size_t min_n = 2,
                           std::size_t max_n = 10) {
  lbmv::util::Rng rng(seed);
  const auto n = static_cast<std::size_t>(rng.uniform_int(
      static_cast<std::int64_t>(min_n), static_cast<std::int64_t>(max_n)));
  std::vector<double> t(n);
  for (double& ti : t) {
    ti = std::exp(rng.uniform(std::log(0.2), std::log(20.0)));
  }
  return SystemConfig(std::move(t), rng.uniform(1.0, 60.0));
}

TEST_P(RandomSystemAudit, CompBonusTruthfulAndVoluntary) {
  const SystemConfig config = random_config(GetParam());
  CompBonusMechanism mechanism;
  EXPECT_TRUE(voluntary_participation_holds(mechanism, config, 1e-8));
  TruthfulnessAuditor auditor(mechanism);
  for (std::size_t agent = 0; agent < config.size(); ++agent) {
    const auto report = auditor.audit_agent(config, agent);
    EXPECT_TRUE(report.truthful_dominant(1e-7))
        << "seed " << GetParam() << " agent " << agent << " gains "
        << report.max_gain;
  }
}

TEST_P(RandomSystemAudit, VcgTruthfulInBidsAndVoluntary) {
  const SystemConfig config = random_config(GetParam());
  VcgMechanism mechanism;
  EXPECT_TRUE(voluntary_participation_holds(mechanism, config, 1e-8));
  TruthfulnessAuditor auditor(mechanism);
  AuditOptions options;
  options.exec_multipliers = {1.0};  // VCG's guarantee covers bids only
  for (std::size_t agent = 0; agent < config.size(); ++agent) {
    const auto report = auditor.audit_agent(config, agent, options);
    EXPECT_TRUE(report.truthful_dominant(1e-7))
        << "seed " << GetParam() << " agent " << agent;
  }
}

TEST_P(RandomSystemAudit, NoPaymentAlwaysManipulable) {
  const SystemConfig config = random_config(GetParam(), 3, 10);
  NoPaymentMechanism mechanism;
  TruthfulnessAuditor auditor(mechanism);
  const auto report = auditor.audit_agent(config, 0);
  EXPECT_GT(report.max_gain, 0.0) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomSystemAudit,
                         ::testing::Range<std::uint64_t>(1, 13));

}  // namespace

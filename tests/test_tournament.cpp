// Tests for strategy tournaments.

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <memory>
#include <vector>

#include "lbmv/core/comp_bonus.h"
#include "lbmv/core/no_payment.h"
#include "lbmv/strategy/tournament.h"
#include "lbmv/util/error.h"

namespace {

using namespace lbmv::strategy;
using lbmv::core::CompBonusMechanism;
using lbmv::core::NoPaymentMechanism;

std::vector<std::unique_ptr<Strategy>> standard_lineup() {
  std::vector<std::unique_ptr<Strategy>> v;
  v.push_back(std::make_unique<TruthfulStrategy>());
  v.push_back(std::make_unique<ScalingStrategy>(3.0, 1.0));   // overbidder
  v.push_back(std::make_unique<ScalingStrategy>(0.5, 1.0));   // underbidder
  v.push_back(std::make_unique<SlackExecutionStrategy>(2.0)); // slacker
  return v;
}

std::vector<const Strategy*> pointers(
    const std::vector<std::unique_ptr<Strategy>>& owned) {
  std::vector<const Strategy*> v;
  for (const auto& s : owned) v.push_back(s.get());
  return v;
}

TEST(Tournament, TruthfulHasZeroRegretUnderCompBonus) {
  // A *consistent* population (every agent executes at its bid): here the
  // dominant-strategy guarantee applies sample-by-sample, so the truthful
  // strategy has exactly zero regret and every lie costs money.
  CompBonusMechanism mechanism;
  std::vector<std::unique_ptr<Strategy>> owned;
  owned.push_back(std::make_unique<TruthfulStrategy>());
  owned.push_back(std::make_unique<ScalingStrategy>(3.0, 3.0));
  owned.push_back(std::make_unique<ScalingStrategy>(1.5, 1.5));
  TournamentOptions options;
  options.instances = 40;
  options.agents = 9;
  const auto scores = run_tournament(mechanism, pointers(owned), options);
  ASSERT_EQ(scores.size(), 3u);
  EXPECT_EQ(scores[0].name, "truthful");
  EXPECT_NEAR(scores[0].mean_regret, 0.0, 1e-9);
  for (std::size_t s = 1; s < scores.size(); ++s) {
    EXPECT_GT(scores[s].mean_regret, 0.0) << scores[s].name;
  }
}

TEST(Tournament, InconsistentOpponentsCanProduceNegativeRegret) {
  // Scope boundary, matching test_audit: with *inconsistent* participants
  // in the population (underbidders, slackers — whose execution cannot
  // match their bid), truth is no longer a per-sample best response, and
  // some lying strategy can show negative mean regret.  This documents why
  // the theorem's "for every bids of the other agents" needs the
  // consistency qualifier.
  CompBonusMechanism mechanism;
  const auto owned = standard_lineup();
  TournamentOptions options;
  options.instances = 40;
  const auto scores = run_tournament(mechanism, pointers(owned), options);
  double min_regret = scores[0].mean_regret;
  for (const auto& score : scores) {
    min_regret = std::min(min_regret, score.mean_regret);
  }
  EXPECT_LT(min_regret, 0.0);
}

TEST(Tournament, OverbiddingHasNegativeRegretWithoutPayments) {
  // Under the classical protocol the overbidder *gains* from lying, which
  // shows up as negative regret.
  NoPaymentMechanism mechanism;
  const auto owned = standard_lineup();
  TournamentOptions options;
  options.instances = 40;
  const auto scores = run_tournament(mechanism, pointers(owned), options);
  EXPECT_LT(scores[1].mean_regret, 0.0);  // scaling(bid=3x)
}

TEST(Tournament, SampleCountsMatchAssignment) {
  CompBonusMechanism mechanism;
  const auto owned = standard_lineup();
  TournamentOptions options;
  options.instances = 10;
  options.agents = 8;  // 2 agents per strategy per instance
  const auto scores = run_tournament(mechanism, pointers(owned), options);
  for (const auto& score : scores) {
    EXPECT_EQ(score.samples, 20u);
  }
}

TEST(Tournament, DeterministicForFixedSeed) {
  CompBonusMechanism mechanism;
  const auto owned = standard_lineup();
  TournamentOptions options;
  options.instances = 10;
  const auto a = run_tournament(mechanism, pointers(owned), options);
  const auto b = run_tournament(mechanism, pointers(owned), options);
  for (std::size_t s = 0; s < a.size(); ++s) {
    EXPECT_DOUBLE_EQ(a[s].mean_utility, b[s].mean_utility);
    EXPECT_DOUBLE_EQ(a[s].mean_regret, b[s].mean_regret);
  }
}

TEST(Tournament, ValidatesOptions) {
  CompBonusMechanism mechanism;
  const auto owned = standard_lineup();
  TournamentOptions bad;
  bad.agents = 1;
  EXPECT_THROW((void)run_tournament(mechanism, pointers(owned), bad),
               lbmv::util::PreconditionError);
  bad = TournamentOptions{};
  bad.instances = 0;
  EXPECT_THROW((void)run_tournament(mechanism, pointers(owned), bad),
               lbmv::util::PreconditionError);
  EXPECT_THROW((void)run_tournament(mechanism, {}, TournamentOptions{}),
               lbmv::util::PreconditionError);
  bad = TournamentOptions{};
  bad.type_lo = 0.0;
  EXPECT_THROW((void)run_tournament(mechanism, pointers(owned), bad),
               lbmv::util::PreconditionError);
  bad = TournamentOptions{};
  bad.type_hi = std::numeric_limits<double>::infinity();
  EXPECT_THROW((void)run_tournament(mechanism, pointers(owned), bad),
               lbmv::util::PreconditionError);
  bad = TournamentOptions{};
  bad.arrival_rate = -1.0;
  EXPECT_THROW((void)run_tournament(mechanism, pointers(owned), bad),
               lbmv::util::PreconditionError);
}

TEST(Tournament, ThreadCountInvariant) {
  // Instance k draws from seed stream split(k) and the merge walks
  // (instance, agent) in order, so scores are bit-identical whether the
  // instances run serially or on any pool size.
  CompBonusMechanism mechanism;
  const auto owned = standard_lineup();
  TournamentOptions serial;
  serial.instances = 24;
  serial.parallel = false;
  const auto baseline = run_tournament(mechanism, pointers(owned), serial);
  for (std::size_t threads : {1ul, 2ul, 8ul}) {
    lbmv::util::ThreadPool pool(threads);
    TournamentOptions options;
    options.instances = 24;
    options.parallel = true;
    options.pool = &pool;
    const auto scores = run_tournament(mechanism, pointers(owned), options);
    ASSERT_EQ(scores.size(), baseline.size());
    for (std::size_t s = 0; s < scores.size(); ++s) {
      EXPECT_EQ(scores[s].mean_utility, baseline[s].mean_utility)
          << "threads=" << threads << " strategy=" << scores[s].name;
      EXPECT_EQ(scores[s].mean_regret, baseline[s].mean_regret)
          << "threads=" << threads << " strategy=" << scores[s].name;
      EXPECT_EQ(scores[s].samples, baseline[s].samples);
    }
  }
}

}  // namespace

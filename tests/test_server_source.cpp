// Tests for the queueing server, the Poisson job source and metrics —
// including the M/M/1 sanity check that anchors the simulator to theory.

#include <gtest/gtest.h>

#include <limits>
#include <memory>
#include <vector>

#include "lbmv/sim/engine.h"
#include "lbmv/sim/job_source.h"
#include "lbmv/sim/metrics.h"
#include "lbmv/sim/server.h"
#include "lbmv/util/error.h"
#include "lbmv/util/rng.h"

namespace {

using namespace lbmv::sim;
using lbmv::util::Rng;

TEST(ServiceModelMapping, RoundTripsAllModels) {
  for (const auto model :
       {ServiceModel::kExponential, ServiceModel::kDeterministic,
        ServiceModel::kErlang2}) {
    for (double t : {0.25, 1.0, 7.5}) {
      const double m = mean_service_from_linear_coefficient(t, model);
      EXPECT_NEAR(linear_coefficient_from_mean_service(m, model), t, 1e-12);
    }
  }
}

TEST(ServiceModelMapping, ExponentialCoefficientIsMeanSquared) {
  EXPECT_DOUBLE_EQ(
      linear_coefficient_from_mean_service(0.5, ServiceModel::kExponential),
      0.25);
  EXPECT_DOUBLE_EQ(linear_coefficient_from_mean_service(
                       1.0, ServiceModel::kDeterministic),
                   0.5);
}

TEST(Server, ServesJobsFifoWithDeterministicService) {
  Simulation sim;
  Server server(sim, "s", 0.5, ServiceModel::kDeterministic, Rng(1));
  // t = 0.5 deterministic => mean service = 1.0 exactly.
  sim.schedule(0.0, [&] { server.submit(Job{1, 0.0}); });
  sim.schedule(0.1, [&] { server.submit(Job{2, 0.1}); });
  sim.run();
  const auto& completions = server.completions();
  ASSERT_EQ(completions.size(), 2u);
  EXPECT_EQ(completions[0].job_id, 1u);
  EXPECT_DOUBLE_EQ(completions[0].start, 0.0);
  EXPECT_DOUBLE_EQ(completions[0].finish, 1.0);
  EXPECT_EQ(completions[1].job_id, 2u);
  EXPECT_DOUBLE_EQ(completions[1].start, 1.0);  // waited for job 1
  EXPECT_DOUBLE_EQ(completions[1].finish, 2.0);
  EXPECT_DOUBLE_EQ(completions[1].waiting_time(), 0.9);
  EXPECT_DOUBLE_EQ(server.busy_time(), 2.0);
}

TEST(Server, Erlang2ServiceHasHalfTheExponentialVariance) {
  // Same mean service time, but Erlang-2 has variance m^2/2 instead of
  // m^2 — the lower-variance service distribution the M/G/1 reading of the
  // paper's model allows.
  Simulation sim;
  // Execution value chosen so both models have mean service exactly 1.
  Server exponential(sim, "exp", 1.0, ServiceModel::kExponential, Rng(61));
  Server erlang(sim, "erl", 0.75, ServiceModel::kErlang2, Rng(62));
  sim.schedule(0.0, [&] {
    for (std::uint64_t i = 0; i < 20000; ++i) {
      exponential.submit(Job{i, 0.0});
      erlang.submit(Job{i, 0.0});
    }
  });
  sim.run();
  EXPECT_DOUBLE_EQ(erlang.mean_service_time(), 1.0);
  lbmv::util::RunningStats exp_stats, erl_stats;
  for (const auto& c : exponential.completions()) {
    exp_stats.add(c.service_time());
  }
  for (const auto& c : erlang.completions()) {
    erl_stats.add(c.service_time());
  }
  EXPECT_NEAR(exp_stats.mean(), 1.0, 0.03);
  EXPECT_NEAR(erl_stats.mean(), 1.0, 0.03);
  EXPECT_NEAR(exp_stats.variance(), 1.0, 0.06);
  EXPECT_NEAR(erl_stats.variance(), 0.5, 0.04);
}

TEST(Server, IdleServerStartsServiceImmediately) {
  Simulation sim;
  Server server(sim, "s", 0.5, ServiceModel::kDeterministic, Rng(1));
  sim.schedule(5.0, [&] { server.submit(Job{7, 5.0}); });
  sim.run();
  ASSERT_EQ(server.completions().size(), 1u);
  EXPECT_DOUBLE_EQ(server.completions()[0].waiting_time(), 0.0);
}

TEST(Server, ManyJobsAllComplete) {
  Simulation sim;
  Server server(sim, "s", 0.01, ServiceModel::kExponential, Rng(3));
  sim.schedule(0.0, [&] {
    for (std::uint64_t i = 0; i < 5000; ++i) server.submit(Job{i, 0.0});
  });
  sim.run();
  EXPECT_EQ(server.completions().size(), 5000u);
  EXPECT_FALSE(server.busy());
  EXPECT_EQ(server.queue_length(), 0u);
}

TEST(JobSource, EmitsApproximatelyPoissonCounts) {
  Simulation sim;
  Server fast(sim, "fast", 0.01, ServiceModel::kExponential, Rng(11));
  Server slow(sim, "slow", 0.01, ServiceModel::kExponential, Rng(12));
  std::vector<Server*> servers{&fast, &slow};
  const double horizon = 2000.0;
  JobSource source(sim, servers, {3.0, 1.0}, horizon, Rng(13));
  source.start();
  sim.run();
  const double emitted = static_cast<double>(source.jobs_emitted());
  EXPECT_NEAR(emitted / horizon, 4.0, 0.15);  // ~4 jobs/s total
  const auto counts = source.per_server_counts();
  EXPECT_NEAR(static_cast<double>(counts[0]) / emitted, 0.75, 0.02);
}

TEST(JobSource, ValidatesConstruction) {
  Simulation sim;
  Server s(sim, "s", 1.0, ServiceModel::kExponential, Rng(1));
  std::vector<Server*> servers{&s};
  EXPECT_THROW(JobSource(sim, servers, {1.0, 2.0}, 10.0, Rng(2)),
               lbmv::util::PreconditionError);
  EXPECT_THROW(JobSource(sim, servers, {0.0}, 10.0, Rng(2)),
               lbmv::util::PreconditionError);
  EXPECT_THROW(JobSource(sim, servers, {1.0}, 0.0, Rng(2)),
               lbmv::util::PreconditionError);
}

TEST(Mm1Theory, SimulatedWaitingTimeMatchesRhoOverMuMinusLambda) {
  // M/M/1 with lambda = 2, mu = 4: Wq = rho / (mu - lambda) = 0.25.
  Simulation sim;
  // t = m^2 with m = 0.25 => t = 0.0625.
  Server server(sim, "s", 0.0625, ServiceModel::kExponential, Rng(21));
  std::vector<Server*> servers{&server};
  const double horizon = 60000.0;
  JobSource source(sim, servers, {2.0}, horizon, Rng(22));
  source.start();
  sim.run();
  const auto metrics = collect_metrics(servers, horizon, 0.05);
  EXPECT_NEAR(metrics.servers[0].mean_waiting_time, 0.25, 0.02);
  EXPECT_NEAR(metrics.servers[0].utilization, 0.5, 0.02);
  EXPECT_NEAR(metrics.servers[0].throughput, 2.0, 0.05);
}

TEST(Metrics, WarmupDiscardsEarlyJobs) {
  Simulation sim;
  Server server(sim, "s", 0.5, ServiceModel::kDeterministic, Rng(1));
  sim.schedule(0.0, [&] { server.submit(Job{0, 0.0}); });   // in warmup
  sim.schedule(50.0, [&] { server.submit(Job{1, 50.0}); });  // measured
  sim.run();
  std::vector<Server*> servers{&server};
  const auto metrics = collect_metrics(servers, 100.0, 0.2);
  EXPECT_EQ(metrics.servers[0].jobs_completed, 1u);
  EXPECT_EQ(metrics.total_jobs(), 1u);
}

TEST(Metrics, MeasuredTotalLatencyUsesThroughputTimesWaiting) {
  Simulation sim;
  Server server(sim, "s", 0.5, ServiceModel::kDeterministic, Rng(1));
  sim.schedule(10.0, [&] {
    server.submit(Job{0, 0.0});
    server.submit(Job{1, 0.0});  // waits exactly one service time
  });
  sim.run();
  std::vector<Server*> servers{&server};
  const auto metrics = collect_metrics(servers, 100.0, 0.0);
  const auto& sm = metrics.servers[0];
  EXPECT_NEAR(metrics.measured_total_latency,
              sm.throughput * sm.mean_waiting_time, 1e-12);
  EXPECT_DOUBLE_EQ(sm.mean_waiting_time, 0.5);  // (0 + 1) / 2
}

TEST(Metrics, ValidatesArguments) {
  Simulation sim;
  Server server(sim, "s", 1.0, ServiceModel::kExponential, Rng(1));
  std::vector<Server*> servers{&server};
  EXPECT_THROW((void)collect_metrics(servers, 0.0),
               lbmv::util::PreconditionError);
  EXPECT_THROW((void)collect_metrics(servers, 10.0, 1.0),
               lbmv::util::PreconditionError);
}

TEST(Metrics, RejectsNonFiniteArguments) {
  // duration = +inf passes `> 0` but yields zero throughput everywhere;
  // a NaN warmup fraction passes neither bound check and silently keeps
  // every job.  Both must throw instead of producing meaningless output.
  Simulation sim;
  Server server(sim, "s", 1.0, ServiceModel::kExponential, Rng(1));
  std::vector<Server*> servers{&server};
  const double inf = std::numeric_limits<double>::infinity();
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW((void)collect_metrics(servers, inf),
               lbmv::util::PreconditionError);
  EXPECT_THROW((void)collect_metrics(servers, nan),
               lbmv::util::PreconditionError);
  EXPECT_THROW((void)collect_metrics(servers, 10.0, nan),
               lbmv::util::PreconditionError);
}

}  // namespace

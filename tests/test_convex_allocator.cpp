// Tests for the general convex allocator, including parameterized property
// sweeps certifying agreement with the closed forms and KKT optimality.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "lbmv/alloc/convex_allocator.h"
#include "lbmv/alloc/kkt.h"
#include "lbmv/alloc/mm1_allocator.h"
#include "lbmv/alloc/pr_allocator.h"
#include "lbmv/model/latency.h"
#include "lbmv/util/error.h"
#include "lbmv/util/rng.h"

namespace {

using namespace lbmv::model;
using lbmv::alloc::check_kkt;
using lbmv::alloc::convex_allocate;
using lbmv::alloc::ConvexAllocator;
using lbmv::alloc::mm1_allocate;
using lbmv::alloc::pr_allocate;

std::vector<std::unique_ptr<LatencyFunction>> linear_curves(
    const std::vector<double>& t) {
  std::vector<std::unique_ptr<LatencyFunction>> fns;
  for (double ti : t) fns.push_back(std::make_unique<LinearLatency>(ti));
  return fns;
}

TEST(ConvexAllocate, MatchesPrClosedFormOnLinear) {
  const std::vector<double> t{1.0, 2.0, 5.0, 10.0};
  const double R = 20.0;
  const auto fns = linear_curves(t);
  const Allocation numeric = convex_allocate(fns, R);
  const Allocation closed = pr_allocate(t, R);
  for (std::size_t i = 0; i < t.size(); ++i) {
    EXPECT_NEAR(numeric[i], closed[i], 1e-9) << "computer " << i;
  }
}

TEST(ConvexAllocate, FeasibleAndKktCertifiedOnMm1) {
  std::vector<std::unique_ptr<LatencyFunction>> fns;
  fns.push_back(std::make_unique<MM1Latency>(10.0));
  fns.push_back(std::make_unique<MM1Latency>(6.0));
  fns.push_back(std::make_unique<MM1Latency>(3.0));
  const double R = 12.0;
  const Allocation x = convex_allocate(fns, R);
  EXPECT_TRUE(x.is_feasible(R, 1e-9));
  const auto report = check_kkt(x, fns, R, 1e-6);
  EXPECT_TRUE(report.optimal()) << report.describe();
}

TEST(ConvexAllocate, MatchesMm1ClosedForm) {
  const std::vector<double> mus{10.0, 6.0, 3.0};
  const double R = 12.0;
  std::vector<std::unique_ptr<LatencyFunction>> fns;
  for (double mu : mus) fns.push_back(std::make_unique<MM1Latency>(mu));
  const Allocation numeric = convex_allocate(fns, R);
  const Allocation closed = mm1_allocate(mus, R);
  for (std::size_t i = 0; i < mus.size(); ++i) {
    EXPECT_NEAR(numeric[i], closed[i], 1e-7) << "computer " << i;
  }
}

TEST(ConvexAllocate, IdlesSlowComputersWhenOptimal) {
  // M/M/1 with a tiny load: slow machines should receive nothing because
  // their marginal cost at zero exceeds the multiplier.
  std::vector<std::unique_ptr<LatencyFunction>> fns;
  fns.push_back(std::make_unique<MM1Latency>(100.0));
  fns.push_back(std::make_unique<MM1Latency>(0.5));
  const Allocation x = convex_allocate(fns, 0.05);
  EXPECT_GT(x[0], 0.049);
  EXPECT_NEAR(x[1], 0.0, 1e-9);
}

TEST(ConvexAllocate, RejectsOverCapacityLoad) {
  std::vector<std::unique_ptr<LatencyFunction>> fns;
  fns.push_back(std::make_unique<MM1Latency>(1.0));
  fns.push_back(std::make_unique<MM1Latency>(2.0));
  EXPECT_THROW((void)convex_allocate(fns, 3.5),
               lbmv::util::PreconditionError);
}

TEST(ConvexAllocate, RejectsEmptyAndBadRate) {
  std::vector<std::unique_ptr<LatencyFunction>> empty;
  EXPECT_THROW((void)convex_allocate(empty, 1.0),
               lbmv::util::PreconditionError);
  auto fns = linear_curves({1.0});
  EXPECT_THROW((void)convex_allocate(fns, -1.0),
               lbmv::util::PreconditionError);
}

TEST(ConvexAllocatorInterface, WorksThroughFamilies) {
  ConvexAllocator allocator;
  LinearFamily linear;
  const std::vector<double> t{1.0, 3.0};
  const Allocation x = allocator.allocate(linear, t, 8.0);
  const Allocation closed = pr_allocate(t, 8.0);
  EXPECT_NEAR(x[0], closed[0], 1e-8);
  EXPECT_NEAR(allocator.optimal_latency(linear, t, 8.0),
              lbmv::alloc::pr_optimal_latency(t, 8.0), 1e-7);
  EXPECT_EQ(allocator.name(), "convex");
}

// ---------------------------------------------------------------------------
// Property sweep: on random linear instances the numeric solver must agree
// with the PR closed form and pass the KKT check.

struct RandomInstanceParam {
  std::uint64_t seed;
  std::size_t n;
};

class ConvexVsClosedForm
    : public ::testing::TestWithParam<RandomInstanceParam> {};

TEST_P(ConvexVsClosedForm, AgreesWithPrAndKkt) {
  const auto param = GetParam();
  lbmv::util::Rng rng(param.seed);
  std::vector<double> t(param.n);
  for (double& ti : t) ti = std::exp(rng.uniform(std::log(0.1), std::log(50.0)));
  const double R = rng.uniform(1.0, 100.0);

  const auto fns = linear_curves(t);
  const Allocation numeric = convex_allocate(fns, R);
  const Allocation closed = pr_allocate(t, R);
  EXPECT_TRUE(numeric.is_feasible(R, 1e-9));
  for (std::size_t i = 0; i < t.size(); ++i) {
    EXPECT_NEAR(numeric[i], closed[i], 1e-7 * R) << "computer " << i;
  }
  EXPECT_TRUE(check_kkt(numeric, fns, R, 1e-6).optimal());
}

INSTANTIATE_TEST_SUITE_P(
    RandomLinearInstances, ConvexVsClosedForm,
    ::testing::Values(RandomInstanceParam{1, 2}, RandomInstanceParam{2, 3},
                      RandomInstanceParam{3, 4}, RandomInstanceParam{4, 8},
                      RandomInstanceParam{5, 16}, RandomInstanceParam{6, 16},
                      RandomInstanceParam{7, 32}, RandomInstanceParam{8, 64},
                      RandomInstanceParam{9, 128},
                      RandomInstanceParam{10, 256}),
    [](const ::testing::TestParamInfo<RandomInstanceParam>& info) {
      return "seed" + std::to_string(info.param.seed) + "_n" +
             std::to_string(info.param.n);
    });

// Property sweep on random M/M/1 instances: numeric vs closed form + KKT.
class ConvexVsMm1 : public ::testing::TestWithParam<RandomInstanceParam> {};

TEST_P(ConvexVsMm1, AgreesWithClosedFormAndKkt) {
  const auto param = GetParam();
  lbmv::util::Rng rng(param.seed * 1000 + 17);
  std::vector<double> mus(param.n);
  double total_mu = 0.0;
  for (double& mu : mus) {
    mu = rng.uniform(0.5, 20.0);
    total_mu += mu;
  }
  const double R = rng.uniform(0.1, 0.85) * total_mu;

  std::vector<std::unique_ptr<LatencyFunction>> fns;
  for (double mu : mus) fns.push_back(std::make_unique<MM1Latency>(mu));
  const Allocation numeric = convex_allocate(fns, R);
  const Allocation closed = mm1_allocate(mus, R);
  for (std::size_t i = 0; i < mus.size(); ++i) {
    EXPECT_NEAR(numeric[i], closed[i], 1e-6 * std::max(1.0, R))
        << "computer " << i;
  }
  EXPECT_TRUE(check_kkt(numeric, fns, R, 1e-5).optimal());
}

INSTANTIATE_TEST_SUITE_P(
    RandomMm1Instances, ConvexVsMm1,
    ::testing::Values(RandomInstanceParam{1, 2}, RandomInstanceParam{2, 3},
                      RandomInstanceParam{3, 5}, RandomInstanceParam{4, 8},
                      RandomInstanceParam{5, 13}, RandomInstanceParam{6, 21},
                      RandomInstanceParam{7, 34}, RandomInstanceParam{8, 55}),
    [](const ::testing::TestParamInfo<RandomInstanceParam>& info) {
      return "seed" + std::to_string(info.param.seed) + "_n" +
             std::to_string(info.param.n);
    });

// Property sweep on power-law latencies: no closed form, but feasibility,
// KKT and superiority over the proportional heuristic must hold.
class ConvexOnPowerLaw : public ::testing::TestWithParam<RandomInstanceParam> {
};

TEST_P(ConvexOnPowerLaw, KktCertifiedAndBeatsProportionalSplit) {
  const auto param = GetParam();
  lbmv::util::Rng rng(param.seed * 31 + 5);
  const double k = rng.uniform(1.2, 3.0);
  std::vector<double> t(param.n);
  for (double& ti : t) ti = rng.uniform(0.2, 8.0);
  const double R = rng.uniform(2.0, 40.0);

  PowerFamily family(k);
  std::vector<std::unique_ptr<LatencyFunction>> fns;
  for (double ti : t) fns.push_back(family.make(ti));

  const Allocation x = convex_allocate(fns, R);
  EXPECT_TRUE(x.is_feasible(R, 1e-9));
  EXPECT_TRUE(check_kkt(x, fns, R, 1e-5).optimal());

  const Allocation heuristic = pr_allocate(t, R);
  EXPECT_LE(total_latency(x, fns), total_latency(heuristic, fns) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    RandomPowerInstances, ConvexOnPowerLaw,
    ::testing::Values(RandomInstanceParam{1, 2}, RandomInstanceParam{2, 4},
                      RandomInstanceParam{3, 6}, RandomInstanceParam{4, 9},
                      RandomInstanceParam{5, 16}, RandomInstanceParam{6, 25}),
    [](const ::testing::TestParamInfo<RandomInstanceParam>& info) {
      return "seed" + std::to_string(info.param.seed) + "_n" +
             std::to_string(info.param.n);
    });

}  // namespace

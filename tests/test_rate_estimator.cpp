// Tests for the verification oracle: recovering execution values from
// observed completions.

#include <gtest/gtest.h>

#include <vector>

#include "lbmv/sim/engine.h"
#include "lbmv/sim/job_source.h"
#include "lbmv/sim/rate_estimator.h"
#include "lbmv/sim/server.h"
#include "lbmv/util/error.h"
#include "lbmv/util/rng.h"

namespace {

using namespace lbmv::sim;
using lbmv::util::Rng;

std::vector<Completion> synthetic_completions(double service,
                                              std::size_t count) {
  std::vector<Completion> completions;
  double t = 0.0;
  for (std::size_t i = 0; i < count; ++i) {
    completions.push_back(Completion{i, t, t, t + service});
    t += service;
  }
  return completions;
}

TEST(RateEstimator, EmptyLogYieldsNoEstimate) {
  EXPECT_FALSE(
      estimate_execution_value({}, ServiceModel::kExponential).has_value());
}

TEST(RateEstimator, DeterministicServiceRecoversExactValue) {
  // t = m^2 / 2 for deterministic service; m = 2 => t = 2.
  const auto completions = synthetic_completions(2.0, 100);
  const auto estimate =
      estimate_execution_value(completions, ServiceModel::kDeterministic);
  ASSERT_TRUE(estimate.has_value());
  EXPECT_DOUBLE_EQ(estimate->mean_service, 2.0);
  EXPECT_DOUBLE_EQ(estimate->execution_value, 2.0);
  EXPECT_DOUBLE_EQ(estimate->ci95, 0.0);  // no variance at all
  EXPECT_TRUE(estimate->consistent_with(2.0));
  EXPECT_FALSE(estimate->consistent_with(2.1));
}

TEST(RateEstimator, RecoversExecutionValueFromSimulatedServer) {
  // A server running at execution value 2.0 under light load: the estimate
  // must land on 2.0 within its own confidence interval (stretched 3x for
  // the ~0.3% of honest runs outside a 95% CI).
  Simulation sim;
  const double exec_value = 2.0;
  Server server(sim, "s", exec_value, ServiceModel::kExponential, Rng(5));
  std::vector<Server*> servers{&server};
  JobSource source(sim, servers, {0.2}, 50000.0, Rng(6));
  source.start();
  sim.run();
  const auto estimate = estimate_execution_value(server.completions(),
                                                 ServiceModel::kExponential);
  ASSERT_TRUE(estimate.has_value());
  EXPECT_GT(estimate->samples, 5000u);
  EXPECT_NEAR(estimate->execution_value, exec_value, 3.0 * estimate->ci95);
  EXPECT_LT(estimate->ci95, 0.15);
}

TEST(RateEstimator, DistinguishesSlackFromHonestExecution) {
  // Two servers, one honest (t~ = 1) and one running 2x slower (t~ = 2):
  // the estimates must separate cleanly.
  Simulation sim;
  Server honest(sim, "honest", 1.0, ServiceModel::kExponential, Rng(7));
  Server slacker(sim, "slacker", 2.0, ServiceModel::kExponential, Rng(8));
  std::vector<Server*> servers{&honest, &slacker};
  JobSource source(sim, servers, {0.2, 0.2}, 30000.0, Rng(9));
  source.start();
  sim.run();
  const auto honest_est = estimate_execution_value(
      honest.completions(), ServiceModel::kExponential);
  const auto slack_est = estimate_execution_value(
      slacker.completions(), ServiceModel::kExponential);
  ASSERT_TRUE(honest_est && slack_est);
  EXPECT_LT(honest_est->execution_value + honest_est->ci95,
            slack_est->execution_value - slack_est->ci95);
}

TEST(RateEstimatorRobust, TrimmedMatchesPlainOnCleanExponentialData) {
  // The analytic bias correction must make the trimmed estimator agree
  // with the plain one on uncorrupted data.
  Rng rng(41);
  std::vector<Completion> completions;
  double t = 0.0;
  for (std::size_t i = 0; i < 60000; ++i) {
    const double s = rng.exponential(1.0 / 1.5);  // mean 1.5 => t~ = 2.25
    completions.push_back(Completion{i, t, t, t + s});
    t += s;
  }
  const auto plain =
      estimate_execution_value(completions, ServiceModel::kExponential);
  const auto trimmed = estimate_execution_value_trimmed(
      completions, ServiceModel::kExponential, 0.1);
  ASSERT_TRUE(plain && trimmed);
  EXPECT_NEAR(trimmed->execution_value, 2.25, 0.05);
  EXPECT_NEAR(trimmed->execution_value, plain->execution_value, 0.06);
}

TEST(RateEstimatorRobust, SurvivesInjectedClockGlitches) {
  // Failure injection: 1% of the records carry absurd service times (a
  // stuck clock).  The plain mean is dragged far off; the trimmed
  // estimator stays on target.
  Rng rng(43);
  std::vector<Completion> completions;
  double t = 0.0;
  for (std::size_t i = 0; i < 20000; ++i) {
    double s = rng.exponential(1.0);  // mean 1 => t~ = 1
    if (i % 100 == 0) s = 1000.0;     // glitch
    completions.push_back(Completion{i, t, t, t + s});
    t += s;
  }
  const auto plain =
      estimate_execution_value(completions, ServiceModel::kExponential);
  const auto trimmed = estimate_execution_value_trimmed(
      completions, ServiceModel::kExponential, 0.05);
  ASSERT_TRUE(plain && trimmed);
  EXPECT_GT(plain->execution_value, 50.0);  // hopelessly biased
  EXPECT_NEAR(trimmed->execution_value, 1.0, 0.1);
}

TEST(RateEstimatorRobust, CannotBePoisonedDownward) {
  // A slacker cannot hide behind a few fabricated ultra-fast records
  // either: trimming drops both tails symmetrically.
  Rng rng(47);
  std::vector<Completion> completions;
  double t = 0.0;
  for (std::size_t i = 0; i < 20000; ++i) {
    double s = rng.exponential(1.0 / 2.0);  // mean 2 => t~ = 4 (slacking)
    if (i % 50 == 0) s = 1e-9;              // fabricated "fast" records
    completions.push_back(Completion{i, t, t, t + s});
    t += s;
  }
  const auto trimmed = estimate_execution_value_trimmed(
      completions, ServiceModel::kExponential, 0.05);
  ASSERT_TRUE(trimmed);
  EXPECT_NEAR(trimmed->execution_value, 4.0, 0.4);
}

TEST(RateEstimatorRobust, DeterministicServiceNeedsNoCorrection) {
  const auto completions = synthetic_completions(2.0, 1000);
  const auto trimmed = estimate_execution_value_trimmed(
      completions, ServiceModel::kDeterministic, 0.2);
  ASSERT_TRUE(trimmed);
  EXPECT_DOUBLE_EQ(trimmed->execution_value, 2.0);
}

TEST(RateEstimatorRobust, ValidatesTrimFractionAndEmptyLogs) {
  EXPECT_THROW((void)estimate_execution_value_trimmed(
                   {}, ServiceModel::kExponential, 0.5),
               lbmv::util::PreconditionError);
  EXPECT_FALSE(estimate_execution_value_trimmed(
                   {}, ServiceModel::kExponential, 0.1)
                   .has_value());
}

TEST(RateEstimatorRobust, Erlang2TrimBiasCorrectionWorks) {
  // Clean Erlang-2 data: the trimmed estimator's numeric bias correction
  // must land on the same execution value as the plain mean.
  Rng rng(53);
  std::vector<Completion> completions;
  double t = 0.0;
  for (std::size_t i = 0; i < 60000; ++i) {
    // Erlang-2 with mean 2 => execution value 0.75 * 4 = 3.
    const double s = rng.exponential(1.0) + rng.exponential(1.0);
    completions.push_back(Completion{i, t, t, t + s});
    t += s;
  }
  const auto plain =
      estimate_execution_value(completions, ServiceModel::kErlang2);
  const auto trimmed = estimate_execution_value_trimmed(
      completions, ServiceModel::kErlang2, 0.1);
  ASSERT_TRUE(plain && trimmed);
  EXPECT_NEAR(plain->execution_value, 3.0, 0.08);
  EXPECT_NEAR(trimmed->execution_value, plain->execution_value, 0.08);
}

TEST(RateEstimator, CiShrinksWithSampleCount) {
  Rng rng(31);
  auto noisy = [&](std::size_t count) {
    std::vector<Completion> completions;
    double t = 0.0;
    for (std::size_t i = 0; i < count; ++i) {
      const double s = rng.exponential(1.0);
      completions.push_back(Completion{i, t, t, t + s});
      t += s;
    }
    return estimate_execution_value(completions,
                                    ServiceModel::kExponential);
  };
  const auto small = noisy(100);
  const auto large = noisy(10000);
  ASSERT_TRUE(small && large);
  EXPECT_GT(small->ci95, large->ci95);
}

}  // namespace

// Tests for the argument parser and the `lbmv` CLI commands.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "lbmv/cli/commands.h"
#include "lbmv/obs/obs.h"
#include "lbmv/util/cli.h"
#include "lbmv/util/json.h"

namespace {

using lbmv::cli::run_cli;
using lbmv::util::ArgParser;
using lbmv::util::parse_double_list;
using lbmv::util::UsageError;

// --------------------------------------------------------------------------
// ArgParser

TEST(ArgParser, ParsesFlagsOptionsAndPositionals) {
  ArgParser args("prog", "test");
  args.add_flag("verbose", "talk more");
  args.add_option("rate", "jobs/s", "20");
  args.parse({"--verbose", "--rate", "5", "positional"});
  EXPECT_TRUE(args.flag("verbose"));
  EXPECT_EQ(args.option("rate"), "5");
  EXPECT_DOUBLE_EQ(args.option_as_double("rate"), 5.0);
  ASSERT_EQ(args.positionals().size(), 1u);
  EXPECT_EQ(args.positionals()[0], "positional");
}

TEST(ArgParser, SupportsEqualsSyntaxAndDefaults) {
  ArgParser args("prog", "test");
  args.add_option("rate", "jobs/s", "20");
  args.parse({"--rate=7.5"});
  EXPECT_DOUBLE_EQ(args.option_as_double("rate"), 7.5);
  ArgParser untouched("prog", "test");
  untouched.add_option("rate", "jobs/s", "20");
  untouched.parse({});
  EXPECT_EQ(untouched.option("rate"), "20");
}

TEST(ArgParser, RejectsUnknownAndMalformed) {
  ArgParser args("prog", "test");
  args.add_flag("quick", "");
  args.add_option("rate", "", "1");
  EXPECT_THROW(args.parse({"--nope"}), UsageError);
  ArgParser args2("prog", "test");
  args2.add_option("rate", "", "1");
  EXPECT_THROW(args2.parse({"--rate"}), UsageError);  // missing value
  ArgParser args3("prog", "test");
  args3.add_flag("quick", "");
  EXPECT_THROW(args3.parse({"--quick=yes"}), UsageError);
  ArgParser args4("prog", "test");
  args4.add_option("rate", "", "x");
  args4.parse({});
  EXPECT_THROW((void)args4.option_as_double("rate"), UsageError);
  EXPECT_THROW((void)args4.option("undeclared"), UsageError);
}

TEST(ArgParser, NumericListsAndIntegers) {
  ArgParser args("prog", "test");
  args.add_option("types", "", "1,2.5,10");
  args.add_option("rounds", "", "12");
  args.parse({});
  EXPECT_EQ(args.option_as_doubles("types"),
            (std::vector<double>{1.0, 2.5, 10.0}));
  EXPECT_EQ(args.option_as_long("rounds"), 12);
  EXPECT_THROW((void)parse_double_list("1,,2"), UsageError);
  EXPECT_THROW((void)parse_double_list("1,abc"), UsageError);
  EXPECT_THROW((void)parse_double_list(""), UsageError);
}

TEST(ArgParser, HelpListsDeclaredEntries) {
  ArgParser args("prog", "does things");
  args.add_option("rate", "jobs per second", "20");
  args.add_flag("json", "machine output");
  const std::string help = args.help();
  EXPECT_NE(help.find("does things"), std::string::npos);
  EXPECT_NE(help.find("--rate"), std::string::npos);
  EXPECT_NE(help.find("jobs per second"), std::string::npos);
  EXPECT_NE(help.find("--json"), std::string::npos);
}

// --------------------------------------------------------------------------
// run_cli

struct CliResult {
  int code;
  std::string out;
  std::string err;
};

CliResult cli(const std::vector<std::string>& args) {
  std::ostringstream out, err;
  const int code = run_cli(args, out, err);
  return {code, out.str(), err.str()};
}

TEST(Cli, NoArgsPrintsHelpWithError) {
  const auto result = cli({});
  EXPECT_EQ(result.code, 2);
  EXPECT_NE(result.out.find("commands:"), std::string::npos);
}

TEST(Cli, UnknownCommandFails) {
  const auto result = cli({"frobnicate"});
  EXPECT_EQ(result.code, 2);
  EXPECT_NE(result.err.find("unknown command"), std::string::npos);
}

TEST(Cli, CommandHelpIsGenerated) {
  const auto result = cli({"run", "--help"});
  EXPECT_EQ(result.code, 0);
  EXPECT_NE(result.out.find("--mechanism"), std::string::npos);
}

TEST(Cli, PaperCommandPrintsHeadlineNumbers) {
  const auto result = cli({"paper"});
  EXPECT_EQ(result.code, 0);
  EXPECT_NE(result.out.find("78.43"), std::string::npos);
  EXPECT_NE(result.out.find("Figure 1"), std::string::npos);
  EXPECT_NE(result.out.find("Figure 6"), std::string::npos);
}

TEST(Cli, RunCommandTableAndJsonAgree) {
  const auto table = cli({"run", "--types", "1,2", "--rate", "6"});
  EXPECT_EQ(table.code, 0);
  EXPECT_NE(table.out.find("actual latency: 24"), std::string::npos);
  const auto json =
      cli({"run", "--types", "1,2", "--rate", "6", "--json"});
  EXPECT_EQ(json.code, 0);
  EXPECT_NE(json.out.find("\"actual_latency\": 24"), std::string::npos);
}

TEST(Cli, RunWithDeviationChangesOutcome) {
  const auto honest = cli({"run", "--types", "1,2", "--rate", "6"});
  const auto lying =
      cli({"run", "--types", "1,2", "--rate", "6", "--deviate", "0:2:2"});
  EXPECT_EQ(lying.code, 0);
  EXPECT_NE(honest.out, lying.out);
}

TEST(Cli, AuditExitCodeReflectsTruthfulness) {
  EXPECT_EQ(cli({"audit", "--types", "1,2,4", "--rate", "6"}).code, 0);
  const auto broken = cli({"audit", "--types", "1,2,4", "--rate", "6",
                           "--mechanism", "no-payment"});
  EXPECT_EQ(broken.code, 1);
  EXPECT_NE(broken.out.find("NO"), std::string::npos);
}

TEST(Cli, UsageErrorsAreExitCode2) {
  EXPECT_EQ(cli({"run", "--types", "abc", "--rate", "5"}).code, 2);
  EXPECT_EQ(cli({"run", "--mechanism", "quantum"}).code, 2);
  EXPECT_EQ(cli({"run", "--deviate", "banana"}).code, 2);
  EXPECT_EQ(cli({"dist", "--topology", "mesh?"}).code, 2);
  EXPECT_EQ(cli({"config"}).code, 2);  // --file required
}

TEST(Cli, FrugalityMatchesPaperRatio) {
  const auto result =
      cli({"frugality", "--types", "1,1,2,2,2,5,5,5,5,5,10,10,10,10,10,10",
           "--rate", "20"});
  EXPECT_EQ(result.code, 0);
  EXPECT_NE(result.out.find("2.138"), std::string::npos);
}

TEST(Cli, DistCommandRunsEachTopology) {
  for (const char* topology : {"star", "broadcast", "tree", "private"}) {
    const auto result = cli(
        {"dist", "--types", "1,2,5", "--rate", "10", "--topology", topology});
    EXPECT_EQ(result.code, 0) << topology;
    EXPECT_NE(result.out.find(topology), std::string::npos);
  }
}

TEST(Cli, ConfigCommandReadsJsonFile) {
  const std::string path = ::testing::TempDir() + "lbmv_config_test.json";
  {
    std::ofstream file(path);
    file << R"({
      "true_values": [1, 2, 4],
      "arrival_rate": 8,
      "mechanism": "comp-bonus",
      "deviations": [{"agent": 0, "bid_mult": 3.0, "exec_mult": 1.5}]
    })";
  }
  const auto result = cli({"config", "--file", path, "--json"});
  EXPECT_EQ(result.code, 0) << result.err;
  EXPECT_NE(result.out.find("\"agents\""), std::string::npos);
  // Same round through `run` must agree.
  const auto direct = cli({"run", "--types", "1,2,4", "--rate", "8",
                           "--deviate", "0:3:1.5", "--json"});
  EXPECT_EQ(result.out, direct.out);
  std::remove(path.c_str());
}

TEST(Cli, ConfigCommandReportsJsonErrors) {
  const std::string path = ::testing::TempDir() + "lbmv_bad_config.json";
  {
    std::ofstream file(path);
    file << "{ not json";
  }
  const auto result = cli({"config", "--file", path});
  EXPECT_EQ(result.code, 2);
  EXPECT_NE(result.err.find("config error"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Cli, DynamicsAndLearnRun) {
  const auto dynamics = cli({"dynamics", "--types", "1,2", "--rate", "4",
                             "--rounds", "5"});
  EXPECT_EQ(dynamics.code, 0) << dynamics.err;
  EXPECT_NE(dynamics.out.find("final latency"), std::string::npos);
  const auto learn = cli({"learn", "--types", "1,2", "--rate", "4",
                          "--rounds", "60"});
  EXPECT_EQ(learn.code, 0) << learn.err;
  EXPECT_NE(learn.out.find("truthful fraction"), std::string::npos);
}

TEST(Cli, PoaCommandComputesKnownInstance) {
  // Links l1 = 1 + x, l2 = x at unit demand: equilibrium L = 1,
  // optimum L = 7/8, PoA = 8/7.
  const auto result = cli({"poa", "--types", "1,1", "--constants", "1,0",
                           "--rate", "1"});
  EXPECT_EQ(result.code, 0) << result.err;
  EXPECT_NE(result.out.find("1.1429"), std::string::npos);
  EXPECT_EQ(cli({"poa", "--types", "1,1", "--constants", "1"}).code, 2);
}

TEST(Cli, PoaIsOneForPureLinearLinks) {
  const auto result = cli({"poa", "--types", "1,2,5", "--rate", "10"});
  EXPECT_EQ(result.code, 0);
  EXPECT_NE(result.out.find("price of anarchy:    1.0000"),
            std::string::npos);
}

TEST(Cli, CoalitionCommandFlagsManipulablePairs) {
  const auto result =
      cli({"coalition", "--types", "1,1,2", "--rate", "6", "--pair", "0,1"});
  EXPECT_EQ(result.code, 1);  // not coalition-proof
  EXPECT_NE(result.out.find("coalition-proof:        NO"),
            std::string::npos);
  EXPECT_EQ(cli({"coalition", "--pair", "0"}).code, 2);
}

TEST(Cli, EpochsCommandReportsEfficiency) {
  const auto fresh = cli({"epochs", "--types", "1,2", "--rate", "4",
                          "--epochs", "15", "--drift", "0.2", "--lag", "0"});
  EXPECT_EQ(fresh.code, 0) << fresh.err;
  EXPECT_NE(fresh.out.find("mean efficiency"), std::string::npos);
  EXPECT_NE(fresh.out.find("1.0000"), std::string::npos);  // fresh = optimal
  const auto stale = cli({"epochs", "--types", "1,2", "--rate", "4",
                          "--epochs", "15", "--drift", "0.2", "--lag", "3"});
  EXPECT_EQ(stale.code, 0);
  EXPECT_EQ(stale.out.find("mean efficiency (optimal/achieved): 1.0000"),
            std::string::npos);  // degraded
}

TEST(Cli, ProtocolCommandRuns) {
  const auto result = cli({"protocol", "--types", "0.01,0.02", "--rate", "2",
                           "--horizon", "4000"});
  EXPECT_EQ(result.code, 0) << result.err;
  EXPECT_NE(result.out.find("messages: 6"), std::string::npos);
}

// --------------------------------------------------------------------------
// obs
//
// Snapshot-content tests require probes compiled in; under -DLBMV_OBS=OFF
// the command still runs but records nothing, so they skip.

#define SKIP_IF_OBS_COMPILED_OUT()                                      \
  if (!lbmv::obs::kCompiledIn)                                          \
  GTEST_SKIP() << "probes compiled out (LBMV_OBS=0)"

TEST(Cli, ObsDashboardCrossChecksCompletionCounters) {
  SKIP_IF_OBS_COMPILED_OUT();
  const auto result = cli({"obs", "--types", "0.01,0.02", "--rate", "2",
                           "--horizon", "200", "--replications", "2"});
  EXPECT_EQ(result.code, 0) << result.err;
  EXPECT_NE(result.out.find("lbmv_sim_events_total"), std::string::npos);
  EXPECT_NE(result.out.find(" == "), std::string::npos);  // cross-check held
  EXPECT_EQ(result.out.find(" != "), std::string::npos);
}

TEST(Cli, ObsJsonSnapshotParsesWithDocumentedFamilies) {
  SKIP_IF_OBS_COMPILED_OUT();
  const auto result =
      cli({"obs", "--types", "0.01,0.02", "--rate", "2", "--horizon", "200",
           "--replications", "2", "--snapshot", "json"});
  EXPECT_EQ(result.code, 0) << result.err;
  const auto doc = lbmv::util::JsonValue::parse(result.out);
  const auto& counters = doc.at("counters");
  const auto& histograms = doc.at("histograms");
  for (const char* family :
       {"lbmv_sim_events_total", "lbmv_sim_window_refills_total",
        "lbmv_sim_source_jobs_total", "lbmv_mech_rounds_total",
        "lbmv_mech_leave_one_out_batches_total",
        "lbmv_protocol_rounds_total", "lbmv_protocol_replications_total",
        "lbmv_pool_tasks_total"}) {
    EXPECT_TRUE(counters.contains(family)) << family;
  }
  EXPECT_TRUE(doc.at("gauges").contains("lbmv_sim_queue_depth"));
  EXPECT_TRUE(histograms.contains("lbmv_sim_window_fill_events"));
  EXPECT_GT(counters.at("lbmv_sim_events_total").as_number(), 0.0);
}

TEST(Cli, ObsPromSnapshotHasTypeLines) {
  SKIP_IF_OBS_COMPILED_OUT();
  const auto result =
      cli({"obs", "--types", "0.01,0.02", "--rate", "2", "--horizon", "200",
           "--replications", "2", "--snapshot", "prom"});
  EXPECT_EQ(result.code, 0) << result.err;
  EXPECT_NE(result.out.find("# TYPE lbmv_sim_events_total counter"),
            std::string::npos);
  EXPECT_NE(result.out.find("# TYPE lbmv_sim_queue_depth gauge"),
            std::string::npos);
  EXPECT_NE(
      result.out.find("# TYPE lbmv_sim_window_fill_events histogram"),
      std::string::npos);
}

TEST(Cli, ObsTraceExportIsValidChromeJson) {
  SKIP_IF_OBS_COMPILED_OUT();
  const std::string path = "cli_obs_trace_test.json";
  const auto result =
      cli({"obs", "--types", "0.01,0.02", "--rate", "2", "--horizon", "200",
           "--replications", "2", "--trace", path});
  EXPECT_EQ(result.code, 0) << result.err;
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  const auto doc = lbmv::util::JsonValue::parse(buffer.str());
  EXPECT_FALSE(doc.at("traceEvents").as_array().empty());
  std::remove(path.c_str());
}

TEST(Cli, ObsRejectsBadSnapshotMode) {
  const auto result = cli({"obs", "--snapshot", "xml"});
  EXPECT_EQ(result.code, 2);
  EXPECT_NE(result.err.find("--snapshot"), std::string::npos);
}

TEST(Cli, ObsDynamicsWorkloadShowsStrategyProbes) {
  SKIP_IF_OBS_COMPILED_OUT();
  const auto result = cli({"obs", "--types", "1,2,5", "--rate", "10",
                           "--workload", "dynamics", "--rounds", "4"});
  EXPECT_EQ(result.code, 0) << result.err;
  EXPECT_NE(result.out.find("lbmv_strategy_deviation_evals_total"),
            std::string::npos);
  EXPECT_NE(result.out.find("lbmv_strategy_mechanism_runs_avoided_total"),
            std::string::npos);
  EXPECT_NE(result.out.find("lbmv_strategy_best_response_round_seconds"),
            std::string::npos);
  EXPECT_NE(result.out.find("cross-check"), std::string::npos);
}

TEST(Cli, ObsDynamicsJsonSnapshotCountsEvaluations) {
  SKIP_IF_OBS_COMPILED_OUT();
  const auto result = cli({"obs", "--types", "1,2,5", "--rate", "10",
                           "--workload", "dynamics", "--rounds", "4",
                           "--snapshot", "json"});
  EXPECT_EQ(result.code, 0) << result.err;
  const auto doc = lbmv::util::JsonValue::parse(result.out);
  const auto& counters = doc.at("counters");
  ASSERT_TRUE(counters.contains("lbmv_strategy_deviation_evals_total"));
  const double evals =
      counters.at("lbmv_strategy_deviation_evals_total").as_number();
  EXPECT_GT(evals, 0.0);
  // Comp-bonus on the default linear family has the closed form: every
  // evaluation skips a mechanism run.
  EXPECT_EQ(
      counters.at("lbmv_strategy_mechanism_runs_avoided_total").as_number(),
      evals);
}

TEST(Cli, ObsRejectsBadWorkload) {
  const auto result = cli({"obs", "--workload", "galactic"});
  EXPECT_EQ(result.code, 2);
  EXPECT_NE(result.err.find("--workload"), std::string::npos);
}

}  // namespace

// Integration tests for the full verified protocol: mechanism + simulator +
// estimator wired together as the paper's §3 protocol describes.

#include <gtest/gtest.h>

#include <memory>

#include "lbmv/analysis/paper_config.h"
#include "lbmv/core/comp_bonus.h"
#include "lbmv/model/bids.h"
#include "lbmv/sim/protocol.h"
#include "lbmv/util/error.h"

namespace {

using lbmv::core::CompBonusMechanism;
using lbmv::model::BidProfile;
using lbmv::model::SystemConfig;
using lbmv::sim::ProtocolOptions;
using lbmv::sim::RoundReport;
using lbmv::sim::VerifiedProtocol;

ProtocolOptions fast_options() {
  ProtocolOptions options;
  options.horizon = 4000.0;
  options.seed = 97;
  return options;
}

TEST(Protocol, MessageCountIsThreeN) {
  const SystemConfig config({1.0, 2.0, 5.0, 10.0}, 8.0);
  CompBonusMechanism mechanism;
  VerifiedProtocol protocol(mechanism, fast_options());
  const RoundReport report =
      protocol.run_round(config, BidProfile::truthful(config));
  EXPECT_EQ(report.messages, 3 * config.size());
}

TEST(Protocol, TruthfulRoundEstimatesCloseToOracle) {
  // Light-load types so the M/G/1 realisation of the linear model is in its
  // validity regime (x_i * sqrt(t_i) << 1).
  const SystemConfig config({0.01, 0.01, 0.02}, 3.0);
  CompBonusMechanism mechanism;
  ProtocolOptions options = fast_options();
  options.horizon = 30000.0;
  VerifiedProtocol protocol(mechanism, options);
  const RoundReport report =
      protocol.run_round(config, BidProfile::truthful(config));
  for (std::size_t i = 0; i < config.size(); ++i) {
    ASSERT_TRUE(report.estimate_available[i]);
    EXPECT_NEAR(report.estimated_execution[i], config.true_value(i),
                0.15 * config.true_value(i))
        << "computer " << i;
    // Estimated payments track the oracle payments.
    EXPECT_NEAR(report.outcome.agents[i].payment,
                report.oracle_outcome.agents[i].payment,
                0.12 * std::max(1.0, report.oracle_outcome.agents[i].payment))
        << "computer " << i;
  }
}

TEST(Protocol, VerificationCatchesASlacker) {
  // C1 bids the truth but executes 2.25x slower.  The estimated execution
  // value must expose it and its verified payment must fall below what the
  // bid-trusting oracle with honest execution would have paid.
  const SystemConfig config({0.01, 0.01, 0.02}, 3.0);
  CompBonusMechanism mechanism;
  ProtocolOptions options = fast_options();
  options.horizon = 30000.0;
  VerifiedProtocol protocol(mechanism, options);

  const RoundReport honest =
      protocol.run_round(config, BidProfile::truthful(config));
  const RoundReport slack =
      protocol.run_round(config, BidProfile::deviate(config, 0, 1.0, 2.25));

  EXPECT_GT(slack.estimated_execution[0],
            1.7 * config.true_value(0));  // ~2.25x, noisy
  EXPECT_LT(slack.outcome.agents[0].utility,
            honest.outcome.agents[0].utility);
}

TEST(Protocol, AllocationMatchesMechanismAllocator) {
  const SystemConfig config({1.0, 3.0}, 4.0);
  CompBonusMechanism mechanism;
  VerifiedProtocol protocol(mechanism, fast_options());
  const RoundReport report =
      protocol.run_round(config, BidProfile::deviate(config, 0, 2.0, 2.0));
  // Bid profile (2, 3): x_0 = (1/2)/(1/2+1/3)*4 = 2.4, x_1 = 1.6.
  EXPECT_NEAR(report.allocation[0], 2.4, 1e-12);
  EXPECT_NEAR(report.allocation[1], 1.6, 1e-12);
}

TEST(Protocol, MeasuredLatencyApproximatesAnalyticModel) {
  // Light-load cross-check: the simulator's measured total latency should
  // land near the analytic L = sum t_i x_i^2 (within ~25% — the linear
  // model is itself a light-traffic approximation).
  const SystemConfig config({0.02, 0.04}, 1.5);
  CompBonusMechanism mechanism;
  ProtocolOptions options = fast_options();
  options.horizon = 60000.0;
  VerifiedProtocol protocol(mechanism, options);
  const RoundReport report =
      protocol.run_round(config, BidProfile::truthful(config));
  const double analytic = report.oracle_outcome.actual_latency;
  EXPECT_NEAR(report.metrics.measured_total_latency, analytic,
              0.25 * analytic);
}

TEST(Protocol, DeterministicGivenSeed) {
  const SystemConfig config({1.0, 2.0}, 3.0);
  CompBonusMechanism mechanism;
  VerifiedProtocol protocol(mechanism, fast_options());
  const auto a = protocol.run_round(config, BidProfile::truthful(config));
  const auto b = protocol.run_round(config, BidProfile::truthful(config));
  EXPECT_EQ(a.metrics.total_jobs(), b.metrics.total_jobs());
  EXPECT_DOUBLE_EQ(a.estimated_execution[0], b.estimated_execution[0]);
}

TEST(Protocol, RejectsNonLinearFamilies) {
  auto family = std::make_shared<lbmv::model::MM1Family>();
  const SystemConfig config({0.2, 0.4}, 2.0, family);
  CompBonusMechanism mechanism;
  VerifiedProtocol protocol(mechanism, fast_options());
  EXPECT_THROW(
      (void)protocol.run_round(config, BidProfile::truthful(config)),
      lbmv::util::PreconditionError);
}

TEST(Protocol, ValidatesOptions) {
  CompBonusMechanism mechanism;
  ProtocolOptions bad;
  bad.horizon = 0.0;
  EXPECT_THROW(VerifiedProtocol(mechanism, bad),
               lbmv::util::PreconditionError);
  bad = ProtocolOptions{};
  bad.warmup_fraction = 1.0;
  EXPECT_THROW(VerifiedProtocol(mechanism, bad),
               lbmv::util::PreconditionError);
}

}  // namespace

// Differential and allocation tests for the batched round kernels.
//
// The contract under test (DESIGN.md §11): Mechanism::run_into and
// Mechanism::run_batch produce the same outcomes as scalar Mechanism::run —
// to 1e-12 relative error across every mechanism, compensation basis, batch
// width and boundary profile below (the linear fast path is in fact
// bit-exact by construction) — and the fused linear path performs zero heap
// allocations per round once the workspace is warm.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <memory>
#include <new>
#include <span>
#include <vector>

#include "lbmv/alloc/convex_allocator.h"
#include "lbmv/alloc/mm1_allocator.h"
#include "lbmv/core/batch.h"
#include "lbmv/core/simd_round.h"
#include "lbmv/core/comp_bonus.h"
#include "lbmv/core/no_payment.h"
#include "lbmv/core/vcg.h"
#include "lbmv/model/bids.h"
#include "lbmv/model/latency.h"
#include "lbmv/util/error.h"
#include "lbmv/util/rng.h"

// ---------------------------------------------------------------------------
// Counting global allocator: every operator new in the process bumps the
// counter while g_counting is set.  operator new[] forwards to operator new
// by its default definition, so the scalar override observes both forms.

namespace {
std::atomic<bool> g_counting{false};
std::atomic<std::size_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  }
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }

namespace {

using lbmv::core::BatchOutcomes;
using lbmv::core::BatchRunOptions;
using lbmv::core::CompBonusMechanism;
using lbmv::core::CompensationBasis;
using lbmv::core::Mechanism;
using lbmv::core::MechanismOutcome;
using lbmv::core::NoPaymentMechanism;
using lbmv::core::ProfileBatch;
using lbmv::core::RoundWorkspace;
using lbmv::core::VcgMechanism;
using lbmv::model::BidProfile;
using lbmv::model::LinearFamily;

/// The mechanisms the paper's experiments sweep: comp-bonus at both
/// compensation bases, VCG, and the no-payment baseline.
std::vector<std::unique_ptr<Mechanism>> all_mechanisms() {
  std::vector<std::unique_ptr<Mechanism>> ms;
  ms.push_back(std::make_unique<CompBonusMechanism>());
  ms.push_back(std::make_unique<CompBonusMechanism>(
      lbmv::core::default_allocator(), CompensationBasis::kBid));
  ms.push_back(std::make_unique<VcgMechanism>());
  ms.push_back(std::make_unique<NoPaymentMechanism>());
  return ms;
}

/// Deterministic batch of B profiles over n agents.  Profile 0 is the
/// boundary case: six orders of magnitude between the fastest and slowest
/// bid (the widest spread the leave-one-out guard resolves), with one agent
/// executing slower than it bid.
ProfileBatch make_batch(std::size_t profiles, std::size_t agents,
                        std::uint64_t seed) {
  ProfileBatch batch(agents);
  batch.reserve(profiles);
  lbmv::util::Rng rng(seed);
  std::vector<double> bids(agents);
  std::vector<double> execs(agents);
  for (std::size_t b = 0; b < profiles; ++b) {
    for (std::size_t i = 0; i < agents; ++i) {
      if (b == 0) {
        const double frac =
            agents == 1 ? 0.0
                        : static_cast<double>(i) /
                              static_cast<double>(agents - 1);
        bids[i] = std::pow(10.0, -3.0 + 6.0 * frac);
        execs[i] = (i == 0) ? bids[i] * 2.5 : bids[i];
      } else {
        bids[i] = std::exp(rng.uniform(std::log(0.2), std::log(20.0)));
        execs[i] = bids[i] * rng.uniform(1.0, 2.0);
      }
    }
    batch.push_back(bids, execs);
  }
  return batch;
}

void expect_outcomes_equal(const MechanismOutcome& batch,
                           const MechanismOutcome& scalar, std::size_t b) {
  ASSERT_EQ(batch.allocation.size(), scalar.allocation.size());
  ASSERT_EQ(batch.agents.size(), scalar.agents.size());
  EXPECT_DOUBLE_EQ(batch.actual_latency, scalar.actual_latency)
      << "profile " << b;
  EXPECT_DOUBLE_EQ(batch.reported_latency, scalar.reported_latency)
      << "profile " << b;
  for (std::size_t i = 0; i < batch.agents.size(); ++i) {
    EXPECT_DOUBLE_EQ(batch.allocation[i], scalar.allocation[i])
        << "profile " << b << " agent " << i;
    const auto& ba = batch.agents[i];
    const auto& sa = scalar.agents[i];
    EXPECT_DOUBLE_EQ(ba.compensation, sa.compensation)
        << "profile " << b << " agent " << i;
    EXPECT_DOUBLE_EQ(ba.bonus, sa.bonus) << "profile " << b << " agent " << i;
    EXPECT_DOUBLE_EQ(ba.payment, sa.payment)
        << "profile " << b << " agent " << i;
    EXPECT_DOUBLE_EQ(ba.valuation, sa.valuation)
        << "profile " << b << " agent " << i;
    EXPECT_DOUBLE_EQ(ba.utility, sa.utility)
        << "profile " << b << " agent " << i;
  }
}

// ---------------------------------------------------------------------------
// ProfileBatch container semantics.

TEST(ProfileBatch, StoresAndExtractsProfiles) {
  ProfileBatch batch(3);
  EXPECT_TRUE(batch.empty());
  BidProfile p;
  p.bids = {1.0, 2.0, 3.0};
  p.executions = {1.5, 2.0, 4.0};
  batch.push_back(p);
  batch.push_back(std::vector<double>{2.0, 2.0, 2.0},
                  std::vector<double>{2.0, 3.0, 2.0});
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch.agents(), 3u);
  EXPECT_EQ(batch.bids(0)[1], 2.0);
  EXPECT_EQ(batch.executions(0)[2], 4.0);
  EXPECT_EQ(batch.bids(1)[0], 2.0);
  EXPECT_EQ(batch.executions(1)[1], 3.0);
  BidProfile out;
  batch.extract_into(0, out);
  EXPECT_EQ(out.bids, p.bids);
  EXPECT_EQ(out.executions, p.executions);
  batch.clear();
  EXPECT_TRUE(batch.empty());
  EXPECT_EQ(batch.agents(), 3u);
}

TEST(ProfileBatch, RejectsMismatchedProfiles) {
  ProfileBatch batch(3);
  const std::vector<double> two{1.0, 2.0};
  const std::vector<double> three{1.0, 2.0, 3.0};
  EXPECT_THROW(batch.push_back(two, three), lbmv::util::PreconditionError);
  EXPECT_THROW(batch.push_back(three, two), lbmv::util::PreconditionError);
  ProfileBatch unsized;
  EXPECT_THROW(unsized.push_back(three, three),
               lbmv::util::PreconditionError);
  BidProfile out;
  EXPECT_THROW(batch.extract_into(0, out), lbmv::util::PreconditionError);
}

// ---------------------------------------------------------------------------
// Differential: batch and _into kernels vs scalar Mechanism::run.

class BatchDifferential : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BatchDifferential, RunBatchMatchesScalarRunsForEveryMechanism) {
  const std::size_t profiles = GetParam();
  const LinearFamily family;
  const double rate = 12.5;
  const ProfileBatch batch = make_batch(profiles, 6, 41);
  for (const auto& mechanism : all_mechanisms()) {
    BatchOutcomes outcomes;
    mechanism->run_batch(family, rate, batch, outcomes);
    ASSERT_EQ(outcomes.size(), profiles) << mechanism->name();
    BidProfile profile;
    for (std::size_t b = 0; b < profiles; ++b) {
      batch.extract_into(b, profile);
      const MechanismOutcome scalar = mechanism->run(family, rate, profile);
      expect_outcomes_equal(outcomes[b], scalar, b);
    }
  }
}

TEST_P(BatchDifferential, ParallelAndSerialBatchesAreBitIdentical) {
  const std::size_t profiles = GetParam();
  const LinearFamily family;
  const ProfileBatch batch = make_batch(profiles, 9, 97);
  const CompBonusMechanism mechanism;
  BatchRunOptions serial;
  serial.parallel = false;
  BatchOutcomes a;
  BatchOutcomes b;
  mechanism.run_batch(family, 8.0, batch, a);
  mechanism.run_batch(family, 8.0, batch, b, serial);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t k = 0; k < a.size(); ++k) {
    ASSERT_EQ(a[k].agents.size(), b[k].agents.size());
    EXPECT_EQ(a[k].actual_latency, b[k].actual_latency);
    EXPECT_EQ(a[k].reported_latency, b[k].reported_latency);
    for (std::size_t i = 0; i < a[k].agents.size(); ++i) {
      EXPECT_EQ(a[k].agents[i].payment, b[k].agents[i].payment);
      EXPECT_EQ(a[k].agents[i].utility, b[k].agents[i].utility);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, BatchDifferential,
                         ::testing::Values<std::size_t>(1, 7, 64));

TEST(BatchDifferential, RunIntoReusedAcrossSizesMatchesScalarRun) {
  // One workspace and outcome carried across rounds of *different* agent
  // counts must still agree with fresh scalar runs (planes shrink and grow).
  const LinearFamily family;
  const CompBonusMechanism mechanism;
  RoundWorkspace ws;
  MechanismOutcome out;
  for (std::size_t n : {8u, 3u, 17u, 2u}) {
    const ProfileBatch batch = make_batch(2, n, 7 * n);
    BidProfile profile;
    batch.extract_into(1, profile);
    mechanism.run_into(family, 4.0, profile, out, ws);
    const MechanismOutcome scalar = mechanism.run(family, 4.0, profile);
    expect_outcomes_equal(out, scalar, n);
  }
}

TEST(BatchDifferential, GenericFamilyArenaPathMatchesScalarRun) {
  // M/M/1 + ConvexAllocator exercises the non-linear branch: latency
  // functions come from the workspace arenas instead of per-round vectors.
  auto mm1 = std::make_shared<lbmv::model::MM1Family>();
  const CompBonusMechanism mechanism(
      std::make_shared<lbmv::alloc::ConvexAllocator>());
  ProfileBatch batch(4);
  lbmv::util::Rng rng(5);
  std::vector<double> types(4);
  for (std::size_t b = 0; b < 5; ++b) {
    for (double& t : types) t = rng.uniform(0.15, 0.4);
    batch.push_back(types, types);
  }
  BatchOutcomes outcomes;
  mechanism.run_batch(*mm1, 4.0, batch, outcomes);
  BidProfile profile;
  for (std::size_t b = 0; b < batch.size(); ++b) {
    batch.extract_into(b, profile);
    const MechanismOutcome scalar = mechanism.run(*mm1, 4.0, profile);
    expect_outcomes_equal(outcomes[b], scalar, b);
  }
}

// ---------------------------------------------------------------------------
// Steady-state allocation freedom of the fused linear fast path.

TEST(ZeroAllocation, WarmLinearRoundsNeverTouchTheHeap) {
  const LinearFamily family;
  const std::size_t n = 64;
  const ProfileBatch batch = make_batch(2, n, 123);
  RoundWorkspace ws;
  MechanismOutcome out;
  for (const auto& mechanism : all_mechanisms()) {
    // Warm-up: size every plane in the workspace and outcome.
    mechanism->run_into(family, 9.0, batch.bids(1), batch.executions(1), out,
                        ws);
    mechanism->run_into(family, 9.0, batch.bids(1), batch.executions(1), out,
                        ws);
    g_alloc_count.store(0);
    g_counting.store(true);
    for (int round = 0; round < 100; ++round) {
      mechanism->run_into(family, 9.0, batch.bids(1), batch.executions(1),
                          out, ws);
    }
    g_counting.store(false);
    EXPECT_EQ(g_alloc_count.load(), 0u)
        << mechanism->name() << ": fused rounds allocated";
  }
}

TEST(ZeroAllocation, GenericArenaKeepsHighWaterAcrossShrinkAndGrow) {
  // The generic-family latency-fn arena keeps its high-water size instead of
  // resizing to exactly n every round: after a round at n = 64, rounds at
  // n = 32 must leave the 64-slot planes intact, and returning to n = 64
  // must cost exactly a steady-state round — no arena churn on either
  // transition.  Forced onto the generic path (kScalar backend) so the
  // arena is actually exercised.
  auto family = std::make_shared<lbmv::model::MM1Family>();
  const CompBonusMechanism mechanism(
      std::make_shared<const lbmv::alloc::MM1Allocator>());
  const auto backend = lbmv::core::kernel_backend();
  lbmv::core::set_kernel_backend(lbmv::core::KernelBackend::kScalar);

  const std::size_t big = 64;
  const std::size_t small = 32;
  std::vector<double> bids(big);
  std::vector<double> execs(big);
  lbmv::util::Rng rng(99);
  double sum_mu_small = 0.0;
  for (std::size_t i = 0; i < big; ++i) {
    bids[i] = rng.uniform(0.5, 1.0);  // mu in [1, 2]: every computer active
    execs[i] = bids[i] * 1.05;
    if (i < small) sum_mu_small += 1.0 / bids[i];
  }
  const double rate = 0.4 * sum_mu_small;  // feasible at both sizes

  RoundWorkspace ws;
  MechanismOutcome out;
  const auto count_round = [&](std::size_t n) {
    g_alloc_count.store(0);
    g_counting.store(true);
    mechanism.run_into(*family, rate, std::span(bids).first(n),
                       std::span(execs).first(n), out, ws);
    g_counting.store(false);
    return g_alloc_count.load();
  };

  count_round(big);  // warm-up: sizes every plane to the high-water mark
  const std::size_t steady_big = count_round(big);
  EXPECT_EQ(count_round(big), steady_big) << "warm rounds are not steady";

  const std::size_t first_small = count_round(small);
  const std::size_t steady_small = count_round(small);
  EXPECT_EQ(first_small, steady_small)
      << "shrinking the round allocated beyond a steady small round";
  EXPECT_EQ(ws.exec_fns.size(), big)
      << "arena shrank to the small round's size instead of keeping its "
         "high-water capacity";
  EXPECT_EQ(ws.bid_fns.size(), big);

  EXPECT_EQ(count_round(big), steady_big)
      << "growing back to the high-water size re-ran the arena setup";
  lbmv::core::set_kernel_backend(backend);
}

TEST(ZeroAllocation, WarmSerialRunBatchNeverTouchesTheHeap) {
  // The serial batch loop adds nothing on top of run_into: outcome slots and
  // per-thread workspaces are warm after the first pass.  (The parallel path
  // necessarily allocates in task submission, so it is not under this test.)
  const LinearFamily family;
  const ProfileBatch batch = make_batch(16, 32, 321);
  const CompBonusMechanism mechanism;
  BatchRunOptions serial;
  serial.parallel = false;
  BatchOutcomes outcomes;
  mechanism.run_batch(family, 9.0, batch, outcomes, serial);
  g_alloc_count.store(0);
  g_counting.store(true);
  mechanism.run_batch(family, 9.0, batch, outcomes, serial);
  g_counting.store(false);
  EXPECT_EQ(g_alloc_count.load(), 0u) << "warm serial run_batch allocated";
}

}  // namespace

// Differential tests for the O(1) single-deviation game engine: the
// closed-form DeviationEvaluator path must agree with the naive re-run
// path to 1e-9 (relative) for every shipped payment rule, across random
// profiles, boundary bids at the search-interval edges, execution
// multipliers > 1, and long committed-deviation sequences (which exercise
// the periodic S/W rebuild).  The generic fallback (no closed form) must
// keep working through Mechanism::run on the shared scratch buffer.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "lbmv/alloc/convex_allocator.h"
#include "lbmv/core/comp_bonus.h"
#include "lbmv/core/mechanism.h"
#include "lbmv/core/no_payment.h"
#include "lbmv/core/vcg.h"
#include "lbmv/model/bids.h"
#include "lbmv/model/system_config.h"
#include "lbmv/strategy/deviation.h"
#include "lbmv/util/error.h"
#include "lbmv/util/rng.h"

namespace {

using lbmv::core::CompBonusMechanism;
using lbmv::core::CompensationBasis;
using lbmv::core::Mechanism;
using lbmv::core::MechanismOutcome;
using lbmv::core::NoPaymentMechanism;
using lbmv::core::VcgMechanism;
using lbmv::model::BidProfile;
using lbmv::model::SystemConfig;
using lbmv::strategy::DeviationEvaluator;

std::vector<double> log_uniform_types(std::size_t n, std::uint64_t seed) {
  lbmv::util::Rng rng(seed);
  std::vector<double> t(n);
  for (double& ti : t) {
    ti = std::exp(rng.uniform(std::log(0.2), std::log(20.0)));
  }
  return t;
}

/// Random non-truthful profile: every agent's bid and execution perturbed.
BidProfile random_profile(const SystemConfig& config, lbmv::util::Rng& rng) {
  BidProfile profile = BidProfile::truthful(config);
  for (std::size_t i = 0; i < config.size(); ++i) {
    profile.bids[i] *= std::exp(rng.uniform(std::log(0.5), std::log(2.0)));
    profile.executions[i] *= rng.uniform(1.0, 2.5);
  }
  return profile;
}

/// All four closed-form mechanisms, index-addressable for parameterised
/// sweeps.
std::unique_ptr<Mechanism> make_mechanism(int kind) {
  switch (kind) {
    case 0:
      return std::make_unique<CompBonusMechanism>();
    case 1:
      return std::make_unique<CompBonusMechanism>(
          lbmv::core::default_allocator(), CompensationBasis::kBid);
    case 2:
      return std::make_unique<VcgMechanism>();
    default:
      return std::make_unique<NoPaymentMechanism>();
  }
}

void expect_rel_near(double actual, double expected, double rel_tol,
                     const char* what) {
  const double scale = std::max(1.0, std::fabs(expected));
  EXPECT_NEAR(actual, expected, rel_tol * scale) << what;
}

class DeviationDifferential : public ::testing::TestWithParam<int> {};

TEST_P(DeviationDifferential, IncrementalMatchesNaiveOnRandomDeviations) {
  const auto mechanism = make_mechanism(GetParam());
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    lbmv::util::Rng rng(seed * 193);
    const auto n = static_cast<std::size_t>(rng.uniform_int(2, 14));
    const SystemConfig config(log_uniform_types(n, seed), rng.uniform(2.0, 50.0));
    const BidProfile profile = random_profile(config, rng);

    const DeviationEvaluator fast(*mechanism, config, profile);
    const DeviationEvaluator naive(*mechanism, config, profile,
                                   DeviationEvaluator::Mode::kNaive);
    ASSERT_TRUE(fast.incremental());
    ASSERT_FALSE(naive.incremental());

    for (int trial = 0; trial < 24; ++trial) {
      const auto i = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
      const double t = config.true_value(i);
      const double bid =
          t * std::exp(rng.uniform(std::log(0.05), std::log(20.0)));
      const double exec = t * rng.uniform(1.0, 3.0);
      expect_rel_near(fast.utility(i, bid, exec), naive.utility(i, bid, exec),
                      1e-9, mechanism->name().c_str());
    }
  }
}

TEST_P(DeviationDifferential, IncrementalMatchesNaiveAtBoundaryBids) {
  // The best-response scan hits the extreme ends of the bid interval and
  // execution multipliers well above 1; the closed form must stay accurate
  // exactly there, where S' is most distorted.
  const auto mechanism = make_mechanism(GetParam());
  const SystemConfig config(log_uniform_types(6, 17), 30.0);
  const BidProfile profile = BidProfile::truthful(config);
  const DeviationEvaluator fast(*mechanism, config, profile);
  const DeviationEvaluator naive(*mechanism, config, profile,
                                 DeviationEvaluator::Mode::kNaive);
  const double lo_mult = 0.05;
  const double hi_mult = 20.0;
  for (std::size_t i = 0; i < config.size(); ++i) {
    const double t = config.true_value(i);
    for (double bid_mult : {lo_mult, 1.0, hi_mult}) {
      for (double exec_mult : {1.0, 1.25, 2.0, 3.0}) {
        expect_rel_near(fast.utility(i, bid_mult * t, exec_mult * t),
                        naive.utility(i, bid_mult * t, exec_mult * t), 1e-9,
                        mechanism->name().c_str());
      }
    }
  }
}

TEST_P(DeviationDifferential, CommitSequenceStaysInAgreement) {
  // Hundreds of committed deviations at small n: the O(1) S/W deltas plus
  // the periodic rebuild must track the from-scratch state to 1e-9 at every
  // step, not just at the end.
  const auto mechanism = make_mechanism(GetParam());
  lbmv::util::Rng rng(4242);
  const SystemConfig config(log_uniform_types(5, 23), 18.0);
  DeviationEvaluator fast(*mechanism, config);
  DeviationEvaluator naive(*mechanism, config,
                           DeviationEvaluator::Mode::kNaive);
  for (int step = 0; step < 400; ++step) {
    const auto i = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(config.size()) - 1));
    const double t = config.true_value(i);
    const double bid = t * std::exp(rng.uniform(std::log(0.2), std::log(5.0)));
    const double exec = t * rng.uniform(1.0, 2.0);
    fast.commit(i, bid, exec);
    naive.commit(i, bid, exec);
    if (step % 20 == 0) {
      expect_rel_near(fast.actual_latency(), naive.actual_latency(), 1e-9,
                      "actual latency after commits");
      const auto probe = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(config.size()) - 1));
      expect_rel_near(fast.utility(probe, t, t), naive.utility(probe, t, t),
                      1e-9, "utility after commits");
    }
  }
  ASSERT_EQ(fast.profile().bids, naive.profile().bids);
  ASSERT_EQ(fast.profile().executions, naive.profile().executions);
}

TEST_P(DeviationDifferential, OutcomeIntoMatchesMechanismRun) {
  const auto mechanism = make_mechanism(GetParam());
  lbmv::util::Rng rng(77);
  const SystemConfig config(log_uniform_types(9, 31), 25.0);
  const BidProfile profile = random_profile(config, rng);
  const DeviationEvaluator evaluator(*mechanism, config, profile);
  ASSERT_TRUE(evaluator.incremental());

  MechanismOutcome closed;
  evaluator.outcome_into(closed);
  const MechanismOutcome reference = mechanism->run(config, profile);

  expect_rel_near(closed.actual_latency, reference.actual_latency, 1e-9,
                  "actual latency");
  expect_rel_near(closed.reported_latency, reference.reported_latency, 1e-9,
                  "reported latency");
  ASSERT_EQ(closed.agents.size(), reference.agents.size());
  for (std::size_t i = 0; i < closed.agents.size(); ++i) {
    expect_rel_near(closed.allocation[i], reference.allocation[i], 1e-12,
                    "allocation");
    expect_rel_near(closed.agents[i].compensation,
                    reference.agents[i].compensation, 1e-9, "compensation");
    expect_rel_near(closed.agents[i].bonus, reference.agents[i].bonus, 1e-9,
                    "bonus");
    expect_rel_near(closed.agents[i].payment, reference.agents[i].payment,
                    1e-9, "payment");
    expect_rel_near(closed.agents[i].valuation, reference.agents[i].valuation,
                    1e-9, "valuation");
    expect_rel_near(closed.agents[i].utility, reference.agents[i].utility,
                    1e-9, "utility");
  }
}

TEST_P(DeviationDifferential, UtilityAtCommittedProfileMatchesOutcome) {
  // utility(i, b_i, e_i) at the committed entries must equal the outcome's
  // per-agent utility — this identity is what makes the tournament's
  // truthful-counterfactual regret exactly zero.
  const auto mechanism = make_mechanism(GetParam());
  lbmv::util::Rng rng(91);
  const SystemConfig config(log_uniform_types(7, 41), 16.0);
  const BidProfile profile = random_profile(config, rng);
  const DeviationEvaluator evaluator(*mechanism, config, profile);
  MechanismOutcome outcome;
  evaluator.outcome_into(outcome);
  for (std::size_t i = 0; i < config.size(); ++i) {
    expect_rel_near(
        evaluator.utility(i, profile.bids[i], profile.executions[i]),
        outcome.agents[i].utility, 1e-9, "self-consistency");
  }
}

INSTANTIATE_TEST_SUITE_P(Mechanisms, DeviationDifferential,
                         ::testing::Values(0, 1, 2, 3));

// ---------------------------------------------------------------------------
// Audit fast path unification: VCG and no-payment now share the closed-form
// context through the Mechanism base class.

TEST(ProfileContext, VcgAndNoPaymentGainAuditFastPaths) {
  const SystemConfig config({1.0, 2.0, 5.0}, 12.0);
  const BidProfile profile = BidProfile::truthful(config);
  const VcgMechanism vcg;
  const NoPaymentMechanism none;
  EXPECT_NE(vcg.make_utility_context(config.family(), config.arrival_rate(),
                                     profile, 0),
            nullptr);
  EXPECT_NE(none.make_utility_context(config.family(), config.arrival_rate(),
                                      profile, 2),
            nullptr);
}

TEST(ProfileContext, AgentContextAgreesWithFullRuns) {
  lbmv::util::Rng rng(55);
  const SystemConfig config(log_uniform_types(6, 3), 21.0);
  const BidProfile base = random_profile(config, rng);
  for (int kind = 0; kind < 4; ++kind) {
    const auto mechanism = make_mechanism(kind);
    for (std::size_t agent = 0; agent < config.size(); ++agent) {
      const auto context = mechanism->make_utility_context(
          config.family(), config.arrival_rate(), base, agent);
      ASSERT_NE(context, nullptr) << mechanism->name();
      for (double bid_mult : {0.3, 1.0, 4.0}) {
        for (double exec_mult : {1.0, 1.7}) {
          BidProfile candidate = base;
          candidate.bids[agent] = bid_mult * config.true_value(agent);
          candidate.executions[agent] = exec_mult * config.true_value(agent);
          const double reference =
              mechanism->run(config, candidate).agents[agent].utility;
          expect_rel_near(context->utility(candidate.bids[agent],
                                           candidate.executions[agent]),
                          reference, 1e-9, mechanism->name().c_str());
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Generic fallback path.

TEST(DeviationFallback, NonLinearFamilyUsesScratchRuns) {
  auto family = std::make_shared<lbmv::model::MM1Family>();
  const SystemConfig config({0.2, 0.25, 1.0 / 3.0}, 4.0, family);
  const CompBonusMechanism mechanism(
      std::make_shared<lbmv::alloc::ConvexAllocator>());
  const BidProfile profile = BidProfile::truthful(config);
  const DeviationEvaluator evaluator(mechanism, config, profile);
  EXPECT_FALSE(evaluator.incremental());

  // Reference: the old per-call profile copy.
  BidProfile candidate = profile;
  candidate.bids[1] = 0.3;
  candidate.executions[1] = 0.3;
  const double reference =
      mechanism.run(config, candidate).agents[1].utility;
  EXPECT_DOUBLE_EQ(evaluator.utility(1, 0.3, 0.3), reference);

  // The scratch buffer must be restored after the query: evaluating a
  // different agent right away sees the original entries for agent 1.
  EXPECT_EQ(evaluator.profile().bids, profile.bids);
  EXPECT_EQ(evaluator.profile().executions, profile.executions);
  const double untouched =
      mechanism.run(config, profile).agents[0].utility;
  EXPECT_DOUBLE_EQ(
      evaluator.utility(0, profile.bids[0], profile.executions[0]), untouched);
}

TEST(DeviationFallback, CommitsApplyToSubsequentQueries) {
  auto family = std::make_shared<lbmv::model::MM1Family>();
  const SystemConfig config({0.2, 0.25, 1.0 / 3.0}, 4.0, family);
  const CompBonusMechanism mechanism(
      std::make_shared<lbmv::alloc::ConvexAllocator>());
  DeviationEvaluator evaluator(mechanism, config);
  evaluator.commit(0, 0.24, 0.24);
  BidProfile expected = BidProfile::truthful(config);
  expected.bids[0] = 0.24;
  expected.executions[0] = 0.24;
  const double reference =
      mechanism.run(config, expected).agents[2].utility;
  EXPECT_DOUBLE_EQ(
      evaluator.utility(2, expected.bids[2], expected.executions[2]),
      reference);
  MechanismOutcome outcome;
  evaluator.outcome_into(outcome);
  EXPECT_DOUBLE_EQ(outcome.actual_latency,
                   mechanism.run(config, expected).actual_latency);
}

// ---------------------------------------------------------------------------
// Argument validation.

TEST(DeviationValidation, RejectsBadConstructionAndQueries) {
  const SystemConfig config({1.0, 2.0, 5.0}, 12.0);
  const CompBonusMechanism mechanism;
  BidProfile short_profile;
  short_profile.bids = {1.0, 2.0};
  short_profile.executions = {1.0, 2.0};
  EXPECT_THROW(DeviationEvaluator(mechanism, config, short_profile),
               lbmv::util::PreconditionError);

  DeviationEvaluator evaluator(mechanism, config);
  EXPECT_THROW((void)evaluator.utility(3, 1.0, 1.0),
               lbmv::util::PreconditionError);
  EXPECT_THROW((void)evaluator.utility(0, -1.0, 1.0),
               lbmv::util::PreconditionError);
  EXPECT_THROW((void)evaluator.utility(0, 1.0, 0.0),
               lbmv::util::PreconditionError);
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_THROW((void)evaluator.utility(0, inf, 1.0),
               lbmv::util::PreconditionError);
  EXPECT_THROW(evaluator.commit(0, 1.0, inf),
               lbmv::util::PreconditionError);
  EXPECT_THROW(evaluator.commit(5, 1.0, 1.0),
               lbmv::util::PreconditionError);
}

}  // namespace

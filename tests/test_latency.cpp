// Unit tests for the latency-function hierarchy and families.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>

#include "lbmv/model/latency.h"
#include "lbmv/util/error.h"

namespace {

using namespace lbmv::model;

TEST(LinearLatency, MatchesPaperEquation1) {
  // l(x) = t * x; cost = t * x^2; marginal = 2 t x.
  LinearLatency l(2.0);
  EXPECT_DOUBLE_EQ(l.latency(3.0), 6.0);
  EXPECT_DOUBLE_EQ(l.latency_derivative(3.0), 2.0);
  EXPECT_DOUBLE_EQ(l.cost(3.0), 18.0);
  EXPECT_DOUBLE_EQ(l.marginal_cost(3.0), 12.0);
  EXPECT_TRUE(std::isinf(l.max_rate()));
}

TEST(LinearLatency, RejectsNonPositiveSlope) {
  EXPECT_THROW(LinearLatency(0.0), lbmv::util::PreconditionError);
  EXPECT_THROW(LinearLatency(-1.0), lbmv::util::PreconditionError);
}

TEST(AffineLatency, ValueAndDerivative) {
  AffineLatency l(1.0, 0.5);
  EXPECT_DOUBLE_EQ(l.latency(4.0), 3.0);
  EXPECT_DOUBLE_EQ(l.latency_derivative(4.0), 0.5);
  EXPECT_DOUBLE_EQ(l.marginal_cost(4.0), 3.0 + 4.0 * 0.5);
}

TEST(AffineLatency, RejectsDegenerateParameters) {
  EXPECT_THROW(AffineLatency(0.0, 0.0), lbmv::util::PreconditionError);
  EXPECT_THROW(AffineLatency(-1.0, 1.0), lbmv::util::PreconditionError);
}

TEST(MG1LightLoad, ReducesToAffineInArrivalRate) {
  // E[S] = 0.1, E[S^2] = 0.03: l(x) = 0.1 + 0.015 x.
  MG1LightLoadLatency l(0.1, 0.03);
  EXPECT_DOUBLE_EQ(l.latency(0.0), 0.1);
  EXPECT_DOUBLE_EQ(l.latency(2.0), 0.1 + 0.03);
  EXPECT_DOUBLE_EQ(l.latency_derivative(5.0), 0.015);
}

TEST(MG1LightLoad, EnforcesJensen) {
  // E[S^2] < E[S]^2 is impossible for a real random variable.
  EXPECT_THROW(MG1LightLoadLatency(1.0, 0.5), lbmv::util::PreconditionError);
}

TEST(MM1Latency, ExpectedResponseTimeAndDomain) {
  MM1Latency l(5.0);
  EXPECT_DOUBLE_EQ(l.latency(0.0), 0.2);
  EXPECT_DOUBLE_EQ(l.latency(4.0), 1.0);
  EXPECT_DOUBLE_EQ(l.latency_derivative(4.0), 1.0);
  EXPECT_DOUBLE_EQ(l.max_rate(), 5.0);
  EXPECT_THROW((void)l.latency(5.0), lbmv::util::PreconditionError);
  EXPECT_THROW((void)l.latency(-0.1), lbmv::util::PreconditionError);
}

TEST(MM1Latency, MarginalCostIsMuOverSquare) {
  // c(x) = x/(mu-x); c'(x) = mu/(mu-x)^2.
  MM1Latency l(3.0);
  const double x = 1.0;
  EXPECT_NEAR(l.marginal_cost(x), 3.0 / (2.0 * 2.0), 1e-12);
}

TEST(PowerLatency, ValueDerivativeAndConvexityGuard) {
  PowerLatency l(2.0, 3.0);
  EXPECT_DOUBLE_EQ(l.latency(2.0), 16.0);
  EXPECT_DOUBLE_EQ(l.latency_derivative(2.0), 2.0 * 3.0 * 4.0);
  EXPECT_THROW(PowerLatency(1.0, 0.5), lbmv::util::PreconditionError);
}

TEST(PowerLatency, ExponentOneEqualsLinear) {
  PowerLatency p(2.0, 1.0);
  LinearLatency l(2.0);
  for (double x : {0.0, 0.5, 2.0, 7.0}) {
    EXPECT_DOUBLE_EQ(p.latency(x), l.latency(x));
    EXPECT_DOUBLE_EQ(p.latency_derivative(x), l.latency_derivative(x));
  }
}

TEST(LatencyClone, ProducesIndependentEqualCopies) {
  const std::unique_ptr<LatencyFunction> fns[] = {
      std::make_unique<LinearLatency>(1.5),
      std::make_unique<AffineLatency>(0.5, 2.0),
      std::make_unique<MG1LightLoadLatency>(0.2, 0.1),
      std::make_unique<MM1Latency>(4.0),
      std::make_unique<PowerLatency>(1.0, 2.0),
  };
  for (const auto& f : fns) {
    const auto copy = f->clone();
    EXPECT_EQ(copy->describe(), f->describe());
    EXPECT_DOUBLE_EQ(copy->latency(0.5), f->latency(0.5));
    EXPECT_NE(copy.get(), f.get());
  }
}

TEST(LinearFamily, MakesLinearWithTheta) {
  LinearFamily family;
  const auto f = family.make(3.0);
  EXPECT_DOUBLE_EQ(f->latency(2.0), 6.0);
  EXPECT_EQ(family.name(), "linear");
  EXPECT_THROW((void)family.make(0.0), lbmv::util::PreconditionError);
}

TEST(MM1Family, ThetaIsMeanServiceTime) {
  MM1Family family;
  const auto f = family.make(0.25);  // mu = 4
  EXPECT_DOUBLE_EQ(f->max_rate(), 4.0);
  EXPECT_EQ(family.name(), "mm1");
}

TEST(MM1Family, LargerThetaIsSlowerEverywhere) {
  MM1Family family;
  const auto fast = family.make(0.2);
  const auto slow = family.make(0.5);
  for (double x : {0.0, 0.5, 1.0, 1.5}) {
    EXPECT_GT(slow->latency(x), fast->latency(x));
  }
}

TEST(PowerFamily, CarriesExponent) {
  PowerFamily family(2.0);
  const auto f = family.make(3.0);
  EXPECT_DOUBLE_EQ(f->latency(2.0), 12.0);
  EXPECT_NE(family.name().find("power"), std::string::npos);
  const auto copy = family.clone();
  EXPECT_EQ(copy->name(), family.name());
}

TEST(LatencyConvexity, MarginalCostIsIncreasingForAllFamilies) {
  // Convexity of the cost is what the allocation theory relies on.
  const std::unique_ptr<LatencyFunction> fns[] = {
      std::make_unique<LinearLatency>(2.0),
      std::make_unique<AffineLatency>(1.0, 0.5),
      std::make_unique<MM1Latency>(10.0),
      std::make_unique<PowerLatency>(0.7, 2.5),
  };
  for (const auto& f : fns) {
    double prev = f->marginal_cost(0.0);
    for (double x = 0.5; x < 5.0; x += 0.5) {
      const double cur = f->marginal_cost(x);
      EXPECT_GT(cur, prev) << f->describe() << " at x=" << x;
      prev = cur;
    }
  }
}

}  // namespace

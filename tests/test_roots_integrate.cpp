// Unit tests for lbmv/util/roots.h and lbmv/util/integrate.h.

#include <gtest/gtest.h>

#include <cmath>

#include "lbmv/util/error.h"
#include "lbmv/util/integrate.h"
#include "lbmv/util/roots.h"

namespace {

using lbmv::util::bisect;
using lbmv::util::golden_section_min;
using lbmv::util::integrate;
using lbmv::util::integrate_to_infinity;
using lbmv::util::minimize_scan;
using lbmv::util::newton_bisect;

TEST(Bisect, FindsSimpleRoot) {
  const auto r = bisect([](double x) { return x * x - 2.0; }, 0.0, 2.0);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.x, std::sqrt(2.0), 1e-10);
}

TEST(Bisect, AcceptsRootAtEndpoint) {
  const auto r = bisect([](double x) { return x - 1.0; }, 1.0, 5.0);
  EXPECT_TRUE(r.converged);
  EXPECT_DOUBLE_EQ(r.x, 1.0);
}

TEST(Bisect, RejectsNonBracketingInterval) {
  EXPECT_THROW(
      (void)bisect([](double x) { return x * x + 1.0; }, -1.0, 1.0),
      lbmv::util::PreconditionError);
}

TEST(Bisect, HonoursFunctionTolerance) {
  const auto r = bisect([](double x) { return x; }, -1.0, 3.0, 0.0, 1e-6, 200);
  EXPECT_TRUE(r.converged);
  EXPECT_LE(std::fabs(r.fx), 1e-6);
}

TEST(NewtonBisect, ConvergesFastOnSmoothFunction) {
  const auto r = newton_bisect([](double x) { return x * x * x - 8.0; },
                               [](double x) { return 3.0 * x * x; }, 0.0, 4.0);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.x, 2.0, 1e-10);
}

TEST(NewtonBisect, SurvivesZeroDerivative) {
  // f(x) = x^3 has f'(0) = 0; the bisection fallback must kick in.
  const auto r = newton_bisect([](double x) { return x * x * x; },
                               [](double x) { return 3.0 * x * x; }, -1.0,
                               2.0);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.x, 0.0, 1e-9);
}

TEST(GoldenSection, FindsParabolaMinimum) {
  const auto r = golden_section_min(
      [](double x) { return (x - 1.5) * (x - 1.5) + 2.0; }, -10.0, 10.0);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.x, 1.5, 1e-7);
  EXPECT_NEAR(r.fx, 2.0, 1e-12);
}

TEST(GoldenSection, DegenerateIntervalReturnsMidpoint) {
  const auto r = golden_section_min([](double x) { return x; }, 3.0, 3.0);
  EXPECT_TRUE(r.converged);
  EXPECT_DOUBLE_EQ(r.x, 3.0);
}

TEST(MinimizeScan, EscapesLocalMinimum) {
  // Two wells: local at x ~ -1 (depth 1), global at x ~ 2 (depth 3).
  auto f = [](double x) {
    return -1.0 / (1.0 + (x + 1.0) * (x + 1.0)) -
           3.0 / (1.0 + 4.0 * (x - 2.0) * (x - 2.0));
  };
  const auto r = minimize_scan(f, -5.0, 5.0, 128);
  EXPECT_NEAR(r.x, 2.0, 0.05);
}

TEST(MinimizeScan, HandlesMinimumAtBoundary) {
  const auto r = minimize_scan([](double x) { return x; }, 1.0, 4.0);
  EXPECT_NEAR(r.x, 1.0, 1e-6);
}

TEST(Integrate, ExactOnPolynomials) {
  // Simpson is exact for cubics; the adaptive version must match analytic
  // values for higher degrees too.
  const double v =
      integrate([](double x) { return x * x * x - 2.0 * x + 1.0; }, 0.0, 2.0);
  EXPECT_NEAR(v, 4.0 - 4.0 + 2.0, 1e-10);
  const double q = integrate([](double x) { return std::pow(x, 6); }, 0.0,
                             1.0, 1e-12);
  EXPECT_NEAR(q, 1.0 / 7.0, 1e-10);
}

TEST(Integrate, ReversedBoundsFlipSign) {
  const double a = integrate([](double x) { return x; }, 0.0, 1.0);
  const double b = integrate([](double x) { return x; }, 1.0, 0.0);
  EXPECT_NEAR(a, -b, 1e-12);
}

TEST(Integrate, ZeroWidthIsZero) {
  EXPECT_DOUBLE_EQ(integrate([](double) { return 5.0; }, 2.0, 2.0), 0.0);
}

TEST(IntegrateToInfinity, MatchesClosedFormTail) {
  // Integral_1^inf 1/x^2 dx = 1.
  const double v =
      integrate_to_infinity([](double x) { return 1.0 / (x * x); }, 1.0);
  EXPECT_NEAR(v, 1.0, 1e-8);
}

TEST(IntegrateToInfinity, ExponentialTail) {
  // Integral_a^inf e^-x dx = e^-a.
  const double v =
      integrate_to_infinity([](double x) { return std::exp(-x); }, 2.0);
  EXPECT_NEAR(v, std::exp(-2.0), 1e-8);
}

TEST(IntegrateToInfinity, ArcherTardosShapedIntegrand) {
  // Integral_b^inf R^2/(1+u*s)^2 du = R^2 / (s (1 + b s)).
  const double R = 20.0, s = 4.1, b = 1.0;
  const double v = integrate_to_infinity(
      [&](double u) {
        const double d = 1.0 + u * s;
        return R * R / (d * d);
      },
      b);
  EXPECT_NEAR(v, R * R / (s * (1.0 + b * s)), 1e-7);
}

}  // namespace

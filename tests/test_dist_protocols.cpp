// Tests for the distributed deployments of the mechanism: all four
// topologies must reproduce the centralised mechanism's payments exactly,
// with their advertised message complexities.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "lbmv/analysis/paper_config.h"
#include "lbmv/core/comp_bonus.h"
#include "lbmv/dist/protocols.h"
#include "lbmv/util/error.h"
#include "lbmv/util/rng.h"

namespace {

using namespace lbmv;
using dist::DistOptions;
using dist::run_distributed_round;
using dist::Topology;

const Topology kAll[] = {Topology::kStar, Topology::kBroadcast,
                         Topology::kTree, Topology::kPrivate};

void expect_matches_centralised(const model::SystemConfig& config,
                                const model::BidProfile& intents,
                                Topology topology, double tol_rel) {
  const core::CompBonusMechanism mechanism;
  const auto reference = mechanism.run(config, intents);
  const auto report = run_distributed_round(topology, config, intents);
  ASSERT_EQ(report.payments.size(), config.size());
  // Absolute floor plus a relative term: the private topology's 1e-9
  // fixed-point quantisation of the aggregate S is amplified through
  // L_{-i} = R^2 / (S - s_i).
  auto tol = [tol_rel](double expected) {
    return tol_rel * std::max(1.0, std::fabs(expected));
  };
  for (std::size_t i = 0; i < config.size(); ++i) {
    EXPECT_NEAR(report.allocation[i], reference.allocation[i],
                tol(reference.allocation[i]))
        << dist::topology_name(topology) << " x_" << i;
    EXPECT_NEAR(report.payments[i], reference.agents[i].payment,
                tol(reference.agents[i].payment))
        << dist::topology_name(topology) << " P_" << i;
    EXPECT_NEAR(report.utilities[i], reference.agents[i].utility,
                tol(reference.agents[i].utility))
        << dist::topology_name(topology) << " U_" << i;
  }
  EXPECT_NEAR(report.actual_latency, reference.actual_latency,
              tol(reference.actual_latency));
}

TEST(DistProtocols, AllTopologiesMatchCentralisedOnPaperConfig) {
  const auto config = analysis::paper_table1_config();
  const auto intents = model::BidProfile::deviate(config, 0, 3.0, 3.0);
  for (Topology topology : kAll) {
    // The private topology pays a (relative) fixed-point quantisation;
    // everything else must match to solver precision.
    const double tol = topology == Topology::kPrivate ? 1e-6 : 1e-9;
    expect_matches_centralised(config, intents, topology, tol);
  }
}

TEST(DistProtocols, MatchesCentralisedOnRandomInstances) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    util::Rng rng(seed);
    const auto n = static_cast<std::size_t>(rng.uniform_int(2, 12));
    std::vector<double> types(n);
    for (double& t : types) t = rng.uniform(0.5, 8.0);
    const model::SystemConfig config(types, rng.uniform(5.0, 40.0));
    model::BidProfile intents = model::BidProfile::truthful(config);
    intents.bids[0] *= rng.uniform(1.0, 3.0);
    intents.executions[0] *= rng.uniform(1.0, 2.0);
    for (Topology topology : kAll) {
      const double tol = topology == Topology::kPrivate ? 1e-6 : 1e-9;
      expect_matches_centralised(config, intents, topology, tol);
    }
  }
}

TEST(DistProtocols, MessageComplexityMatchesAdvertised) {
  const auto config = analysis::paper_table1_config();  // n = 16
  const auto intents = model::BidProfile::truthful(config);
  const std::size_t n = config.size();

  const auto star =
      run_distributed_round(Topology::kStar, config, intents);
  EXPECT_EQ(star.messages, 3 * n);  // the paper's O(n) protocol

  const auto broadcast =
      run_distributed_round(Topology::kBroadcast, config, intents);
  EXPECT_EQ(broadcast.messages, 2 * n * (n - 1));

  const auto tree = run_distributed_round(Topology::kTree, config, intents);
  EXPECT_EQ(tree.messages, 4 * (n - 1));

  const auto priv =
      run_distributed_round(Topology::kPrivate, config, intents);
  EXPECT_EQ(priv.messages, 4 * n * (n - 1));
}

TEST(DistProtocols, MessageOrderingOnALargerSystem) {
  // n = 64: the centralised star is cheapest (3n = 192) but needs a trusted
  // coordinator; the decentralised tree stays O(n) (4(n-1) = 252); the
  // fully redundant broadcast is O(n^2).
  const model::SystemConfig config(std::vector<double>(64, 1.0), 20.0);
  const auto intents = model::BidProfile::truthful(config);
  const auto star = run_distributed_round(Topology::kStar, config, intents);
  const auto tree = run_distributed_round(Topology::kTree, config, intents);
  const auto broadcast =
      run_distributed_round(Topology::kBroadcast, config, intents);
  EXPECT_LT(star.messages, tree.messages);
  EXPECT_LT(tree.messages, broadcast.messages);
}

TEST(DistProtocols, CompletionTimeDominatedByExecutionInterval) {
  const model::SystemConfig config({1.0, 2.0, 4.0}, 6.0);
  const auto intents = model::BidProfile::truthful(config);
  DistOptions options;
  options.execution_time = 25.0;
  for (Topology topology : kAll) {
    const auto report =
        run_distributed_round(topology, config, intents, options);
    EXPECT_GT(report.completion_time, 25.0);
    EXPECT_LT(report.completion_time, 26.0);  // chatter is milliseconds
  }
}

TEST(DistProtocols, RobustToMessageJitter) {
  // Out-of-order delivery across node pairs (random extra delay per
  // message) must not change any payment: the protocols key state on
  // message type + sender, never on arrival order.
  const auto config = analysis::paper_table1_config();
  const auto intents = model::BidProfile::deviate(config, 3, 2.0, 2.0);
  DistOptions jittery;
  jittery.network.jitter = 0.5;  // large vs the ~1e-3 base delay
  jittery.network.seed = 77;
  jittery.execution_time = 10.0;
  const core::CompBonusMechanism mechanism;
  const auto reference = mechanism.run(config, intents);
  for (Topology topology : kAll) {
    const auto report =
        run_distributed_round(topology, config, intents, jittery);
    for (std::size_t i = 0; i < config.size(); ++i) {
      EXPECT_NEAR(report.payments[i], reference.agents[i].payment,
                  1e-6 * std::max(1.0, std::fabs(reference.agents[i].payment)))
          << dist::topology_name(topology) << " P_" << i;
    }
  }
}

TEST(DistProtocols, ValidatesInput) {
  const model::SystemConfig tiny({1.0}, 2.0);
  EXPECT_THROW((void)run_distributed_round(
                   Topology::kStar, tiny, model::BidProfile::truthful(tiny)),
               util::PreconditionError);

  auto family = std::make_shared<model::MM1Family>();
  const model::SystemConfig mm1({0.1, 0.2}, 2.0, family);
  EXPECT_THROW((void)run_distributed_round(
                   Topology::kTree, mm1, model::BidProfile::truthful(mm1)),
               util::PreconditionError);

  const model::SystemConfig ok({1.0, 2.0}, 2.0);
  DistOptions bad;
  bad.execution_time = 0.0;
  EXPECT_THROW((void)run_distributed_round(
                   Topology::kStar, ok, model::BidProfile::truthful(ok), bad),
               util::PreconditionError);
}

TEST(DistProtocols, TopologyNamesAreStable) {
  EXPECT_EQ(dist::topology_name(Topology::kStar), "star");
  EXPECT_EQ(dist::topology_name(Topology::kBroadcast), "broadcast");
  EXPECT_EQ(dist::topology_name(Topology::kTree), "tree");
  EXPECT_EQ(dist::topology_name(Topology::kPrivate), "private");
}

TEST(DistProtocols, WorksAtMinimumSystemSize) {
  const model::SystemConfig config({1.0, 3.0}, 4.0);
  const auto intents = model::BidProfile::deviate(config, 1, 2.0, 2.0);
  for (Topology topology : kAll) {
    const double tol = topology == Topology::kPrivate ? 1e-6 : 1e-9;
    expect_matches_centralised(config, intents, topology, tol);
  }
}

}  // namespace

// Tests for trace spans and the ring-buffer recorder, plus the end-to-end
// acceptance check: a protocol round's per-server completion counters must
// equal the SystemMetrics totals when no warmup is discarded.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "lbmv/core/comp_bonus.h"
#include "lbmv/model/system_config.h"
#include "lbmv/obs/flight_recorder.h"
#include "lbmv/obs/metrics.h"
#include "lbmv/obs/obs.h"
#include "lbmv/obs/sampler.h"
#include "lbmv/obs/trace.h"
#include "lbmv/sim/protocol.h"
#include "lbmv/util/json.h"

namespace {

using namespace lbmv::obs;

struct EnabledScope {
  EnabledScope() { set_enabled(true); }
  ~EnabledScope() { set_enabled(false); }
};

// Recording-behaviour tests only apply with probes compiled in; under
// -DLBMV_OBS=OFF every record call is an intentional no-op.
#define SKIP_IF_COMPILED_OUT()                                          \
  if (!lbmv::obs::kCompiledIn)                                          \
  GTEST_SKIP() << "probes compiled out (LBMV_OBS=0)"

TEST(TraceRecorder, SpanRecordsIntoGlobalRecorderWhenEnabled) {
  SKIP_IF_COMPILED_OUT();
  TraceRecorder::global().clear();
  {
    EnabledScope on;
    const Span span("unit_test_span", "test");
  }
  const auto events = TraceRecorder::global().events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, "unit_test_span");
  EXPECT_STREQ(events[0].category, "test");
  EXPECT_GT(events[0].tid, 0u);
}

TEST(TraceRecorder, SpanIsANoOpWhenDisabled) {
  TraceRecorder::global().clear();
  set_enabled(false);
  { const Span span("invisible", "test"); }
  EXPECT_TRUE(TraceRecorder::global().events().empty());
}

TEST(TraceRecorder, RingOverwritesOldestAndCountsDrops) {
  SKIP_IF_COMPILED_OUT();
  EnabledScope on;
  TraceRecorder recorder(/*capacity_per_thread=*/2);
  for (std::uint64_t i = 0; i < 5; ++i) {
    recorder.record("s", "test", /*start_ns=*/i, /*duration_ns=*/1);
  }
  const auto events = recorder.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(recorder.dropped(), 3u);
  // The two most recent spans (starts 3 and 4) survive.
  EXPECT_EQ(events.front().start_ns + events.back().start_ns, 7u);
}

TEST(TraceRecorder, ChromeJsonParsesAndCarriesCompleteEvents) {
  SKIP_IF_COMPILED_OUT();
  EnabledScope on;
  TraceRecorder recorder;
  recorder.record("alpha", "test", 1000, 2500);
  recorder.record("beta", "test", 4000, 500);
  const lbmv::util::JsonValue doc =
      lbmv::util::JsonValue::parse(recorder.to_chrome_json());
  const auto& events = doc.at("traceEvents").as_array();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].at("name").as_string(), "alpha");
  EXPECT_EQ(events[0].at("ph").as_string(), "X");
  EXPECT_DOUBLE_EQ(events[0].at("ts").as_number(), 0.0);   // rebased
  EXPECT_DOUBLE_EQ(events[0].at("dur").as_number(), 2.5);  // us
  EXPECT_DOUBLE_EQ(events[1].at("ts").as_number(), 3.0);
  EXPECT_GT(events[0].at("tid").as_number(), 0.0);
}

TEST(TraceRecorder, EmptyRecorderStillEmitsValidJson) {
  const TraceRecorder recorder;
  const auto doc = lbmv::util::JsonValue::parse(recorder.to_chrome_json());
  EXPECT_TRUE(doc.at("traceEvents").as_array().empty());
}

TEST(TraceRecorder, ConcurrentSpanEmissionKeepsEveryThreadsTail) {
  SKIP_IF_COMPILED_OUT();
  EnabledScope on;
  TraceRecorder recorder(/*capacity_per_thread=*/64);
  constexpr int kThreads = 4;
  constexpr std::uint64_t kSpansPerThread = 200;  // > capacity: rings wrap
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&recorder] {
      for (std::uint64_t i = 0; i < kSpansPerThread; ++i) {
        recorder.record("worker_span", "test", /*start_ns=*/i,
                        /*duration_ns=*/1);
      }
    });
  }
  for (auto& w : workers) w.join();
  const auto events = recorder.events();
  EXPECT_EQ(events.size(), std::size_t{kThreads} * 64u);
  EXPECT_EQ(recorder.dropped(), kThreads * (kSpansPerThread - 64));
}

TEST(TraceRecorder, ScrapeDuringEmissionSeesConsistentSpans) {
  SKIP_IF_COMPILED_OUT();
  EnabledScope on;
  TraceRecorder recorder(/*capacity_per_thread=*/128);
  std::atomic<bool> stop{false};
  std::vector<std::thread> emitters;
  for (int t = 0; t < 2; ++t) {
    emitters.emplace_back([&] {
      // At least one ring-wrap's worth even if the scraper finishes first.
      std::uint64_t i = 0;
      while (i < 300 || !stop.load(std::memory_order_relaxed)) {
        recorder.record("live_span", "test", ++i, 7);
      }
    });
  }
  // Scrape concurrently with the emitters; every copied-out event must be
  // fully formed (the JSON export also walks the rings under the lock).
  for (int scrape = 0; scrape < 50; ++scrape) {
    for (const TraceEvent& e : recorder.events()) {
      EXPECT_EQ(std::string_view(e.name), "live_span");
      EXPECT_EQ(e.duration_ns, 7u);
      EXPECT_GT(e.start_ns, 0u);
    }
    (void)recorder.to_chrome_json();
  }
  stop.store(true);
  for (auto& e : emitters) e.join();
}

TEST(FlightRecorder, ScrapeDuringEmissionSeesConsistentRecords) {
  SKIP_IF_COMPILED_OUT();
  EnabledScope on;
  FlightRecorder recorder(/*capacity_per_thread=*/128);
  std::atomic<bool> stop{false};
  std::vector<std::thread> emitters;
  for (int t = 0; t < 2; ++t) {
    emitters.emplace_back([&] {
      // At least one ring-wrap's worth even if the scraper finishes first.
      std::uint64_t i = 0;
      while (i < 300 || !stop.load(std::memory_order_relaxed)) {
        recorder.record(Severity::kWarn, "test", "live_record",
                        {{"i", static_cast<double>(++i)}, {"k", 2.0}});
      }
    });
  }
  for (int scrape = 0; scrape < 50; ++scrape) {
    for (const FlightRecord& rec : recorder.records()) {
      EXPECT_EQ(std::string_view(rec.message), "live_record");
      EXPECT_EQ(rec.severity, Severity::kWarn);
      ASSERT_EQ(rec.kv_count, 2u);
      EXPECT_GT(rec.kv[0].value, 0.0);
      EXPECT_DOUBLE_EQ(rec.kv[1].value, 2.0);
    }
    (void)recorder.to_jsonl();
  }
  stop.store(true);
  for (auto& e : emitters) e.join();
  EXPECT_EQ(recorder.records().size(), 2u * 128u);
}

TEST(SamplerConcurrency, BackgroundScraperOverlapsEmittersAndReaders) {
  SKIP_IF_COMPILED_OUT();
  EnabledScope on;
  Registry registry;
  Counter ticks = registry.counter("lbmv_test_concurrent_ticks_total");
  TimeSeriesSampler sampler(registry, /*capacity_per_series=*/32);
  sampler.start(std::chrono::milliseconds(1));
  EXPECT_TRUE(sampler.running());

  std::atomic<bool> stop{false};
  std::thread emitter([&] {
    while (!stop.load(std::memory_order_relaxed)) ticks.inc();
  });
  // Reads race the background scraper on purpose.
  for (int i = 0; i < 20; ++i) {
    (void)sampler.rate_per_sec("lbmv_test_concurrent_ticks_total");
    (void)sampler.series();
    (void)sampler.to_json();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  stop.store(true);
  emitter.join();
  sampler.stop();
  EXPECT_FALSE(sampler.running());
  EXPECT_GE(sampler.sample_count(), 2u);

  // Monotone counter: the sampled series must be nondecreasing.
  const SeriesView view =
      sampler.series_for("lbmv_test_concurrent_ticks_total");
  for (std::size_t p = 1; p < view.points.size(); ++p) {
    EXPECT_LE(view.points[p - 1].value, view.points[p].value);
  }
}

TEST(ObsIntegration, ProtocolRoundCountersMatchSystemMetrics) {
  SKIP_IF_COMPILED_OUT();
  EnabledScope on;
  Registry::global().reset();
  TraceRecorder::global().clear();

  const lbmv::model::SystemConfig config({0.01, 0.01, 0.02}, 3.0);
  const lbmv::core::CompBonusMechanism mechanism;
  lbmv::sim::ProtocolOptions options;
  options.horizon = 500.0;
  options.warmup_fraction = 0.0;  // count every completion
  const lbmv::sim::VerifiedProtocol protocol(mechanism, options);
  const auto report =
      protocol.run_round(config, lbmv::model::BidProfile::truthful(config));

  const MetricsSnapshot snap = Registry::global().snapshot();
  std::uint64_t counted = 0;
  for (std::size_t i = 0; i < config.size(); ++i) {
    const std::string name = labeled("lbmv_server_completions_total",
                                     "server", "C" + std::to_string(i + 1));
    ASSERT_TRUE(snap.counters.contains(name)) << name;
    EXPECT_EQ(snap.counters.at(name), report.metrics.servers[i].jobs_completed)
        << name;
    counted += snap.counters.at(name);
  }
  EXPECT_EQ(counted, report.metrics.total_jobs());

  // The round also left a protocol_round span behind.
  bool saw_round_span = false;
  for (const TraceEvent& e : TraceRecorder::global().events()) {
    if (std::string_view(e.name) == "protocol_round") saw_round_span = true;
  }
  EXPECT_TRUE(saw_round_span);
}

}  // namespace

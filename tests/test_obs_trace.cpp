// Tests for trace spans and the ring-buffer recorder, plus the end-to-end
// acceptance check: a protocol round's per-server completion counters must
// equal the SystemMetrics totals when no warmup is discarded.

#include <gtest/gtest.h>

#include <string>

#include "lbmv/core/comp_bonus.h"
#include "lbmv/model/system_config.h"
#include "lbmv/obs/metrics.h"
#include "lbmv/obs/obs.h"
#include "lbmv/obs/trace.h"
#include "lbmv/sim/protocol.h"
#include "lbmv/util/json.h"

namespace {

using namespace lbmv::obs;

struct EnabledScope {
  EnabledScope() { set_enabled(true); }
  ~EnabledScope() { set_enabled(false); }
};

// Recording-behaviour tests only apply with probes compiled in; under
// -DLBMV_OBS=OFF every record call is an intentional no-op.
#define SKIP_IF_COMPILED_OUT()                                          \
  if (!lbmv::obs::kCompiledIn)                                          \
  GTEST_SKIP() << "probes compiled out (LBMV_OBS=0)"

TEST(TraceRecorder, SpanRecordsIntoGlobalRecorderWhenEnabled) {
  SKIP_IF_COMPILED_OUT();
  TraceRecorder::global().clear();
  {
    EnabledScope on;
    const Span span("unit_test_span", "test");
  }
  const auto events = TraceRecorder::global().events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, "unit_test_span");
  EXPECT_STREQ(events[0].category, "test");
  EXPECT_GT(events[0].tid, 0u);
}

TEST(TraceRecorder, SpanIsANoOpWhenDisabled) {
  TraceRecorder::global().clear();
  set_enabled(false);
  { const Span span("invisible", "test"); }
  EXPECT_TRUE(TraceRecorder::global().events().empty());
}

TEST(TraceRecorder, RingOverwritesOldestAndCountsDrops) {
  SKIP_IF_COMPILED_OUT();
  EnabledScope on;
  TraceRecorder recorder(/*capacity_per_thread=*/2);
  for (std::uint64_t i = 0; i < 5; ++i) {
    recorder.record("s", "test", /*start_ns=*/i, /*duration_ns=*/1);
  }
  const auto events = recorder.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(recorder.dropped(), 3u);
  // The two most recent spans (starts 3 and 4) survive.
  EXPECT_EQ(events.front().start_ns + events.back().start_ns, 7u);
}

TEST(TraceRecorder, ChromeJsonParsesAndCarriesCompleteEvents) {
  SKIP_IF_COMPILED_OUT();
  EnabledScope on;
  TraceRecorder recorder;
  recorder.record("alpha", "test", 1000, 2500);
  recorder.record("beta", "test", 4000, 500);
  const lbmv::util::JsonValue doc =
      lbmv::util::JsonValue::parse(recorder.to_chrome_json());
  const auto& events = doc.at("traceEvents").as_array();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].at("name").as_string(), "alpha");
  EXPECT_EQ(events[0].at("ph").as_string(), "X");
  EXPECT_DOUBLE_EQ(events[0].at("ts").as_number(), 0.0);   // rebased
  EXPECT_DOUBLE_EQ(events[0].at("dur").as_number(), 2.5);  // us
  EXPECT_DOUBLE_EQ(events[1].at("ts").as_number(), 3.0);
  EXPECT_GT(events[0].at("tid").as_number(), 0.0);
}

TEST(TraceRecorder, EmptyRecorderStillEmitsValidJson) {
  const TraceRecorder recorder;
  const auto doc = lbmv::util::JsonValue::parse(recorder.to_chrome_json());
  EXPECT_TRUE(doc.at("traceEvents").as_array().empty());
}

TEST(ObsIntegration, ProtocolRoundCountersMatchSystemMetrics) {
  SKIP_IF_COMPILED_OUT();
  EnabledScope on;
  Registry::global().reset();
  TraceRecorder::global().clear();

  const lbmv::model::SystemConfig config({0.01, 0.01, 0.02}, 3.0);
  const lbmv::core::CompBonusMechanism mechanism;
  lbmv::sim::ProtocolOptions options;
  options.horizon = 500.0;
  options.warmup_fraction = 0.0;  // count every completion
  const lbmv::sim::VerifiedProtocol protocol(mechanism, options);
  const auto report =
      protocol.run_round(config, lbmv::model::BidProfile::truthful(config));

  const MetricsSnapshot snap = Registry::global().snapshot();
  std::uint64_t counted = 0;
  for (std::size_t i = 0; i < config.size(); ++i) {
    const std::string name = labeled("lbmv_server_completions_total",
                                     "server", "C" + std::to_string(i + 1));
    ASSERT_TRUE(snap.counters.contains(name)) << name;
    EXPECT_EQ(snap.counters.at(name), report.metrics.servers[i].jobs_completed)
        << name;
    counted += snap.counters.at(name);
  }
  EXPECT_EQ(counted, report.metrics.total_jobs());

  // The round also left a protocol_round span behind.
  bool saw_round_span = false;
  for (const TraceEvent& e : TraceRecorder::global().events()) {
    if (std::string_view(e.name) == "protocol_round") saw_round_span = true;
  }
  EXPECT_TRUE(saw_round_span);
}

}  // namespace

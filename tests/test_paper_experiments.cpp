// Pins the reconstructed paper evaluation: Table 1/2 and the quantitative
// claims behind Figures 1, 2 and 6.  These are the repository's ground-truth
// reproduction checks; EXPERIMENTS.md documents each against the paper.

#include <gtest/gtest.h>

#include <cmath>

#include "lbmv/analysis/paper_config.h"
#include "lbmv/analysis/paper_experiments.h"
#include "lbmv/core/comp_bonus.h"
#include "lbmv/core/frugality.h"
#include "lbmv/util/error.h"

namespace {

using namespace lbmv::analysis;
using lbmv::core::CompBonusMechanism;
using lbmv::core::frugality_of;

class PaperExperiments : public ::testing::Test {
 protected:
  void SetUp() override {
    config_ = std::make_unique<lbmv::model::SystemConfig>(
        paper_table1_config());
    results_ = run_paper_experiments(mechanism_, *config_);
  }

  const ExperimentResult& result(const std::string& name) const {
    for (const auto& r : results_) {
      if (r.experiment.name == name) return r;
    }
    throw std::runtime_error("missing experiment " + name);
  }

  CompBonusMechanism mechanism_;
  std::unique_ptr<lbmv::model::SystemConfig> config_;
  std::vector<ExperimentResult> results_;
};

TEST_F(PaperExperiments, Table1HasSixteenComputersInFourGroups) {
  EXPECT_EQ(config_->size(), 16u);
  EXPECT_DOUBLE_EQ(config_->arrival_rate(), 20.0);
  EXPECT_DOUBLE_EQ(config_->true_value(0), 1.0);   // C1
  EXPECT_DOUBLE_EQ(config_->true_value(1), 1.0);   // C2
  EXPECT_DOUBLE_EQ(config_->true_value(2), 2.0);   // C3
  EXPECT_DOUBLE_EQ(config_->true_value(4), 2.0);   // C5
  EXPECT_DOUBLE_EQ(config_->true_value(5), 5.0);   // C6
  EXPECT_DOUBLE_EQ(config_->true_value(9), 5.0);   // C10
  EXPECT_DOUBLE_EQ(config_->true_value(10), 10.0); // C11
  EXPECT_DOUBLE_EQ(config_->true_value(15), 10.0); // C16
  // The reconstruction's anchor: sum of inverse types is exactly 5.1.
  double inv = 0.0;
  for (double t : config_->true_values()) inv += 1.0 / t;
  EXPECT_NEAR(inv, 5.1, 1e-12);
}

TEST_F(PaperExperiments, Table2HasEightExperimentsInPaperOrder) {
  const auto experiments = paper_table2_experiments();
  ASSERT_EQ(experiments.size(), 8u);
  const char* names[] = {"True1", "True2", "High1", "High2",
                         "High3", "High4", "Low1",  "Low2"};
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(experiments[i].name, names[i]);
  }
  EXPECT_THROW((void)paper_experiment("Nope"),
               lbmv::util::PreconditionError);
  EXPECT_EQ(paper_experiment("High2").exec_mult, 1.0);
}

TEST_F(PaperExperiments, Figure1_True1IsTheMinimumAt78_43) {
  EXPECT_NEAR(result("True1").outcome.actual_latency, 78.43, 0.005);
  for (const auto& r : results_) {
    EXPECT_GE(r.outcome.actual_latency,
              result("True1").outcome.actual_latency - 1e-9)
        << r.experiment.name;
  }
}

TEST_F(PaperExperiments, Figure1_LatencyIncreasesMatchPaperClaims) {
  // Paper prose: Low1 "about 11%", Low2 "about 66%".
  EXPECT_NEAR(result("Low1").latency_increase_vs_true1, 0.110, 0.002);
  EXPECT_NEAR(result("Low2").latency_increase_vs_true1, 0.659, 0.002);
  // True2: "increasing the total latency by 17%" — measured against True1
  // the increase is 19.6%; measured against the *new* total it is 16.4%.
  // We pin our measured value and discuss the 17% in EXPERIMENTS.md.
  EXPECT_NEAR(result("True2").latency_increase_vs_true1, 0.196, 0.002);
}

TEST_F(PaperExperiments, Figure1_HighClassOrdering) {
  // High2 (full-capacity execution) < High3 (faster than bid) < High1
  // (exec = bid) < High4 (slower than bid), per the paper's discussion.
  const double h1 = result("High1").outcome.actual_latency;
  const double h2 = result("High2").outcome.actual_latency;
  const double h3 = result("High3").outcome.actual_latency;
  const double h4 = result("High4").outcome.actual_latency;
  EXPECT_LT(h2, h3);
  EXPECT_LT(h3, h1);
  EXPECT_LT(h1, h4);
}

TEST_F(PaperExperiments, Figure2_C1UtilityMaximalAtTrue1) {
  const double u_true1 = result("True1").outcome.agents[0].utility;
  for (const auto& r : results_) {
    if (r.experiment.name == "True1") continue;
    EXPECT_LT(r.outcome.agents[0].utility, u_true1) << r.experiment.name;
  }
}

TEST_F(PaperExperiments, Figure2_UtilityDropsMatchPaperPercentages) {
  const double u_true1 = result("True1").outcome.agents[0].utility;
  // "In the experiment Low1 ... utility which is 45% lower than True1."
  const double low1_drop =
      1.0 - result("Low1").outcome.agents[0].utility / u_true1;
  EXPECT_NEAR(low1_drop, 0.452, 0.005);
  // "In the experiment High1 ... utility which is 62% lower than True1."
  const double high1_drop =
      1.0 - result("High1").outcome.agents[0].utility / u_true1;
  EXPECT_NEAR(high1_drop, 0.616, 0.005);
}

TEST_F(PaperExperiments, Figure2_Low2UtilityIsNegative) {
  // "An interesting situation occurs in the experiment Low2 where the
  // payment and utility of C1 are negative."  The utility is negative as
  // claimed; the payment sign depends on the compensation basis (see
  // EXPERIMENTS.md and bench_ablation_compensation).
  const auto& c1 = result("Low2").outcome.agents[0];
  EXPECT_LT(c1.utility, 0.0);
  EXPECT_LT(c1.bonus, 0.0);
}

TEST_F(PaperExperiments, Figures3to5_OtherComputersReactAsDescribed) {
  // High1: "The other computers (C2 - C16) obtain higher utilities."
  // Low1:  "The other computers obtain lower utilities."
  const auto& true1 = result("True1").outcome;
  const auto& high1 = result("High1").outcome;
  const auto& low1 = result("Low1").outcome;
  for (std::size_t i = 1; i < 16; ++i) {
    EXPECT_GT(high1.agents[i].utility, true1.agents[i].utility)
        << "High1 C" << i + 1;
    EXPECT_LT(low1.agents[i].utility, true1.agents[i].utility)
        << "Low1 C" << i + 1;
  }
}

TEST_F(PaperExperiments, Figure6_FrugalityBoundedBy2_5WhereClaimApplies) {
  // "the total payment ... is at most 2.5 times the total valuation", with
  // the total valuation as the lower bound.  The claim holds in the
  // *consistent* experiments (execution equals the declared behaviour):
  // True1 and High1 here.  In experiments where C1's execution deviates
  // from its bid, other agents' bonuses go negative and the ratio leaves
  // [1, 2.5] — quantified in EXPERIMENTS.md and bench_fig6_frugality.
  for (const char* name : {"True1", "High1"}) {
    const auto frugality = frugality_of(result(name).outcome);
    EXPECT_GE(frugality.ratio(), 1.0) << name;
    EXPECT_LE(frugality.ratio(), 2.5) << name;
  }
  EXPECT_NEAR(frugality_of(result("True1").outcome).ratio(), 2.138, 0.002);
  // Documented departures: with C1 underbidding (Low1) the measured total
  // latency exceeds every bid-predicted optimum and the total payment drops
  // far below the total valuation.
  EXPECT_LT(frugality_of(result("Low1").outcome).ratio(), 1.0);
  EXPECT_LT(frugality_of(result("True2").outcome).ratio(), 1.0);
  // ... and with C1 overbidding but executing honestly (High2) the bonuses
  // inflate past the paper's 2.5 bound.
  EXPECT_GT(frugality_of(result("High2").outcome).ratio(), 2.5);
}

TEST_F(PaperExperiments, AllocationsAreAlwaysFeasible) {
  for (const auto& r : results_) {
    EXPECT_TRUE(r.outcome.allocation.is_feasible(20.0, 1e-9))
        << r.experiment.name;
  }
}

TEST_F(PaperExperiments, RunExperimentMatchesBatchRunner) {
  const auto single =
      run_experiment(mechanism_, *config_, paper_experiment("High3"));
  EXPECT_NEAR(single.outcome.actual_latency,
              result("High3").outcome.actual_latency, 1e-12);
}

}  // namespace

// Tests for the live-telemetry pipeline: invariant monitors over corrupted
// and healthy rounds, the flight recorder's ring/JSONL contract, the
// time-series sampler's windowed rates, and the probe naming convention.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <regex>
#include <sstream>
#include <string>
#include <vector>

#include "lbmv/core/comp_bonus.h"
#include "lbmv/core/delta_engine.h"
#include "lbmv/core/invariants.h"
#include "lbmv/core/profile_context.h"
#include "lbmv/model/bids.h"
#include "lbmv/model/system_config.h"
#include "lbmv/obs/flight_recorder.h"
#include "lbmv/obs/metrics.h"
#include "lbmv/obs/monitor.h"
#include "lbmv/obs/obs.h"
#include "lbmv/obs/sampler.h"
#include "lbmv/sim/protocol.h"
#include "lbmv/strategy/best_response.h"
#include "lbmv/util/json.h"

namespace {

using namespace lbmv::obs;

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

/// RAII guard: enable recording for one test, restore "off" after.
struct EnabledScope {
  EnabledScope() { set_enabled(true); }
  ~EnabledScope() { set_enabled(false); }
};

// Recording-behaviour tests only apply with probes compiled in; under
// -DLBMV_OBS=OFF every record call is an intentional no-op.
#define SKIP_IF_COMPILED_OUT()                                          \
  if (!lbmv::obs::kCompiledIn)                                          \
  GTEST_SKIP() << "probes compiled out (LBMV_OBS=0)"

std::uint64_t counter_or_zero(const MetricsSnapshot& snap,
                              const std::string& name) {
  const auto it = snap.counters.find(name);
  return it == snap.counters.end() ? 0 : it->second;
}

TEST(RoundInvariants, CleanRoundHasNoViolations) {
  SKIP_IF_COMPILED_OUT();
  Registry::global().reset();
  FlightRecorder::global().clear();
  EnabledScope on;

  const lbmv::model::SystemConfig config({1.0, 2.0, 5.0}, 10.0);
  const auto profile = lbmv::model::BidProfile::truthful(config);
  const lbmv::core::CompBonusMechanism mechanism;
  const auto outcome = mechanism.run(config, profile);

  const std::size_t violations = lbmv::core::check_round_invariants(
      profile.bids, profile.executions, config.arrival_rate(), outcome,
      lbmv::core::RoundInvariantOptions{/*linear_pr=*/true,
                                        /*participation_guaranteed=*/true});
  EXPECT_EQ(violations, 0u);

  const MetricsSnapshot snap = Registry::global().snapshot();
  const MonitorTotals totals = monitor_totals(snap);
  EXPECT_GT(totals.checks, 0u);
  EXPECT_EQ(totals.violations, 0u);
  // run() itself also feeds the monitors (run_into's obs block), so the
  // explicit pass above is the second check of each invariant.
  EXPECT_GE(counter_or_zero(snap, "lbmv_monitor_feasibility_checks_total"),
            2u);
  EXPECT_TRUE(FlightRecorder::global().records().empty());
}

TEST(RoundInvariants, CorruptedRoundFlagsEveryMonitor) {
  SKIP_IF_COMPILED_OUT();
  Registry::global().reset();
  FlightRecorder::global().clear();
  EnabledScope on;

  const lbmv::model::SystemConfig config({1.0, 2.0, 5.0}, 10.0);
  const auto profile = lbmv::model::BidProfile::truthful(config);
  const lbmv::core::CompBonusMechanism mechanism;
  auto outcome = mechanism.run(config, profile);

  // Corrupt all four invariants: ship too much (feasibility + KKT), break
  // the P = C + B split, and fake a negative truthful utility.
  std::vector<double> rates = std::move(outcome.allocation).release();
  rates[0] *= 1.05;
  outcome.allocation = lbmv::model::Allocation(std::move(rates));
  outcome.agents[0].payment += 1.0;
  outcome.agents[0].utility = -1.0;

  const std::size_t violations = lbmv::core::check_round_invariants(
      profile.bids, profile.executions, config.arrival_rate(), outcome,
      lbmv::core::RoundInvariantOptions{/*linear_pr=*/true,
                                        /*participation_guaranteed=*/true});
  EXPECT_EQ(violations, 4u);

  const MetricsSnapshot snap = Registry::global().snapshot();
  for (const char* family :
       {"lbmv_monitor_feasibility_violations_total",
        "lbmv_monitor_payment_decomposition_violations_total",
        "lbmv_monitor_participation_violations_total",
        "lbmv_monitor_kkt_stationarity_violations_total"}) {
    EXPECT_EQ(counter_or_zero(snap, family), 1u) << family;
  }

  // Every violation left a structured anomaly record with the residual
  // magnitude as its first payload entry.
  const auto records = FlightRecorder::global().records();
  ASSERT_EQ(records.size(), 4u);
  for (const auto& rec : records) {
    EXPECT_EQ(rec.severity, Severity::kError);
    ASSERT_GE(rec.kv_count, 1u);
    EXPECT_STREQ(rec.kv[0].key, "residual");
    EXPECT_GT(rec.kv[0].value, 1e-9);
  }
}

TEST(RoundInvariants, ParticipationDisarmsOnInconsistentProfile) {
  SKIP_IF_COMPILED_OUT();
  Registry::global().reset();
  FlightRecorder::global().clear();
  EnabledScope on;

  const lbmv::model::SystemConfig config({1.0, 2.0, 5.0}, 10.0);
  auto profile = lbmv::model::BidProfile::truthful(config);
  profile.executions[0] = profile.bids[0] * 1.5;  // t~ != b: inconsistent
  const lbmv::core::CompBonusMechanism mechanism;
  auto outcome = mechanism.run(config, profile);
  // A negative utility is *legitimate* at an inconsistent round (the agent
  // lied about execution speed); the monitor must not cry wolf.
  outcome.agents[0].utility = -1.0;

  const MetricsSnapshot before = Registry::global().snapshot();
  const std::size_t violations = lbmv::core::check_round_invariants(
      profile.bids, profile.executions, config.arrival_rate(), outcome,
      lbmv::core::RoundInvariantOptions{/*linear_pr=*/true,
                                        /*participation_guaranteed=*/true});
  EXPECT_EQ(violations, 0u);
  const MetricsSnapshot after = Registry::global().snapshot();
  EXPECT_EQ(
      counter_or_zero(after, "lbmv_monitor_participation_checks_total"),
      counter_or_zero(before, "lbmv_monitor_participation_checks_total"));
}

TEST(InvariantMonitorContract, ToleranceGateIsNanAndInfSafe) {
  SKIP_IF_COMPILED_OUT();
  EnabledScope on;
  InvariantMonitor strict("unit_strict", "test", 1e-9);
  EXPECT_TRUE(strict.check(0.0));
  EXPECT_TRUE(strict.check(1e-12));
  EXPECT_FALSE(strict.check(1e-3));
  EXPECT_FALSE(strict.check(-1e-3));  // magnitude, not signed residual
  // NaN never compares greater: recorded as a check, never a violation.
  EXPECT_TRUE(strict.check(kNaN));

  // Record-only gauges (tolerance = inf) never fire, whatever the value.
  InvariantMonitor gauge("unit_gauge", "test", kInf);
  EXPECT_TRUE(gauge.check(1e30));
  EXPECT_TRUE(gauge.check(kInf));
}

TEST(ContextDrift, PeriodicRebuildFeedsDriftMonitor) {
  SKIP_IF_COMPILED_OUT();
  EnabledScope on;
  const MetricsSnapshot before = Registry::global().snapshot();

  const lbmv::model::SystemConfig config({1.0, 2.0, 5.0}, 10.0);
  lbmv::core::LinearPrProfileContext context(
      lbmv::core::LinearPrRule::kCompBonusExecution, config.arrival_rate(),
      lbmv::model::BidProfile::truthful(config));
  // Drive past the rebuild period (max(64, n) commits) a few times over.
  for (int i = 0; i < 300; ++i) {
    const double bid = 1.0 + 0.001 * static_cast<double>(i % 7);
    context.commit(static_cast<std::size_t>(i) % config.size(), bid, bid);
  }

  const MetricsSnapshot after = Registry::global().snapshot();
  const auto checks = [](const MetricsSnapshot& snap) {
    return counter_or_zero(snap, "lbmv_monitor_context_drift_checks_total");
  };
  const auto violations = [](const MetricsSnapshot& snap) {
    return counter_or_zero(snap,
                           "lbmv_monitor_context_drift_violations_total");
  };
  EXPECT_GT(checks(after), checks(before));
  // O(1) deltas against a from-scratch re-sum stay far below 1e-9.
  EXPECT_EQ(violations(after), violations(before));
}

TEST(FlightRecorderContract, JsonlRoundTrips) {
  SKIP_IF_COMPILED_OUT();
  EnabledScope on;
  FlightRecorder recorder(8);
  recorder.record(Severity::kInfo, "test", "startup", {{"n", 3.0}});
  recorder.record(Severity::kWarn, "test", "queue_depth",
                  {{"depth", 17.0}, {"limit", 16.0}});
  recorder.record(Severity::kError, "test", "mass_balance",
                  {{"residual", 0.25}});

  const std::string jsonl = recorder.to_jsonl();
  std::istringstream lines(jsonl);
  std::string line;
  std::vector<lbmv::util::JsonValue> parsed;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    parsed.push_back(lbmv::util::JsonValue::parse(line));
  }
  ASSERT_EQ(parsed.size(), 3u);
  EXPECT_EQ(parsed[0].at("severity").as_string(), "info");
  EXPECT_EQ(parsed[0].at("message").as_string(), "startup");
  EXPECT_DOUBLE_EQ(parsed[0].at("data").at("n").as_number(), 3.0);
  EXPECT_EQ(parsed[1].at("severity").as_string(), "warn");
  EXPECT_DOUBLE_EQ(parsed[1].at("data").at("depth").as_number(), 17.0);
  EXPECT_DOUBLE_EQ(parsed[1].at("data").at("limit").as_number(), 16.0);
  EXPECT_EQ(parsed[2].at("severity").as_string(), "error");
  EXPECT_EQ(parsed[2].at("subsystem").as_string(), "test");
  EXPECT_DOUBLE_EQ(parsed[2].at("data").at("residual").as_number(), 0.25);
  // Timestamps are monotone within a thread, so the sort is stable.
  EXPECT_LE(parsed[0].at("t_ns").as_number(),
            parsed[1].at("t_ns").as_number());
}

TEST(FlightRecorderContract, RingOverwritesOldestAndCountsDropped) {
  SKIP_IF_COMPILED_OUT();
  EnabledScope on;
  FlightRecorder recorder(4);
  for (int i = 0; i < 10; ++i) {
    recorder.record(Severity::kInfo, "test", "tick",
                    {{"i", static_cast<double>(i)}});
  }
  const auto records = recorder.records();
  ASSERT_EQ(records.size(), 4u);
  EXPECT_EQ(recorder.dropped(), 6u);
  // The *last* four records survive, in timestamp order.
  for (std::size_t r = 0; r < records.size(); ++r) {
    EXPECT_DOUBLE_EQ(records[r].kv[0].value, static_cast<double>(6 + r));
  }

  recorder.clear();
  EXPECT_TRUE(recorder.records().empty());
  EXPECT_EQ(recorder.dropped(), 0u);
}

TEST(FlightRecorderContract, PayloadClampsToMaxKeyValues) {
  SKIP_IF_COMPILED_OUT();
  EnabledScope on;
  FlightRecorder recorder(4);
  recorder.record(Severity::kInfo, "test", "wide",
                  {{"a", 1.0}, {"b", 2.0}, {"c", 3.0}, {"d", 4.0},
                   {"e", 5.0}, {"f", 6.0}});
  const auto records = recorder.records();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].kv_count, FlightRecord::kMaxKeyValues);
  EXPECT_STREQ(records[0].kv[FlightRecord::kMaxKeyValues - 1].key, "d");
}

TEST(SamplerContract, WindowedRatesDeltasAndRingWrap) {
  SKIP_IF_COMPILED_OUT();
  EnabledScope on;
  Registry registry;
  Counter ticks = registry.counter("lbmv_test_ticks_total");
  TimeSeriesSampler sampler(registry, /*capacity_per_series=*/4);

  for (std::uint64_t i = 1; i <= 6; ++i) {
    ticks.inc(10);
    sampler.sample_at(1000 * i);
  }
  EXPECT_EQ(sampler.sample_count(), 6u);
  EXPECT_GT(sampler.dropped_points(), 0u);  // 6 samples into capacity 4

  const SeriesView view = sampler.series_for("lbmv_test_ticks_total");
  EXPECT_EQ(view.kind, "counter");
  ASSERT_EQ(view.points.size(), 4u);
  for (std::size_t p = 1; p < view.points.size(); ++p) {
    EXPECT_LT(view.points[p - 1].t_ms, view.points[p].t_ms);  // oldest first
  }
  EXPECT_DOUBLE_EQ(view.points.back().value, 60.0);

  // 10 ticks per simulated second, whatever the window.
  EXPECT_DOUBLE_EQ(sampler.last_delta("lbmv_test_ticks_total"), 10.0);
  EXPECT_DOUBLE_EQ(sampler.rate_per_sec("lbmv_test_ticks_total"), 10.0);
  EXPECT_DOUBLE_EQ(sampler.rate_per_sec("lbmv_test_ticks_total", 1), 10.0);
  EXPECT_DOUBLE_EQ(sampler.rate_per_sec("no_such_series"), 0.0);
}

TEST(SamplerContract, HistogramsSplitIntoCountAndSumSeries) {
  SKIP_IF_COMPILED_OUT();
  EnabledScope on;
  Registry registry;
  Histogram latency = registry.histogram("lbmv_test_latency_seconds");
  TimeSeriesSampler sampler(registry, 8);
  latency.record(0.5);
  latency.record(1.5);
  sampler.sample_at(1000);

  const SeriesView count =
      sampler.series_for("lbmv_test_latency_seconds:count");
  const SeriesView sum = sampler.series_for("lbmv_test_latency_seconds:sum");
  ASSERT_EQ(count.points.size(), 1u);
  ASSERT_EQ(sum.points.size(), 1u);
  EXPECT_EQ(count.kind, "histogram_count");
  EXPECT_EQ(sum.kind, "histogram_sum");
  EXPECT_DOUBLE_EQ(count.points[0].value, 2.0);
  EXPECT_DOUBLE_EQ(sum.points[0].value, 2.0);
}

TEST(SamplerContract, ToJsonParsesAndEscapesLabeledNames) {
  SKIP_IF_COMPILED_OUT();
  EnabledScope on;
  Registry registry;
  registry.counter(labeled("lbmv_test_jobs_total", "server", "C1")).inc(7);
  TimeSeriesSampler sampler(registry, 8);
  sampler.sample_at(1000);
  sampler.sample_at(2000);

  const auto doc = lbmv::util::JsonValue::parse(sampler.to_json());
  EXPECT_DOUBLE_EQ(doc.at("capacity").as_number(), 8.0);
  EXPECT_DOUBLE_EQ(doc.at("samples").as_number(), 2.0);
  const auto& series = doc.at("series").as_array();
  ASSERT_EQ(series.size(), 1u);
  EXPECT_EQ(series[0].at("name").as_string(),
            "lbmv_test_jobs_total{server=\"C1\"}");
  EXPECT_EQ(series[0].at("kind").as_string(), "counter");
  const auto& points = series[0].at("points").as_array();
  ASSERT_EQ(points.size(), 2u);
  EXPECT_DOUBLE_EQ(points[1].as_array()[0].as_number(), 2000.0);
  EXPECT_DOUBLE_EQ(points[1].as_array()[1].as_number(), 7.0);
}

TEST(Exposition, PrometheusTimestampsAreOptIn) {
  SKIP_IF_COMPILED_OUT();
  EnabledScope on;
  Registry registry;
  registry.counter("lbmv_test_stamped_total").inc(1);
  const MetricsSnapshot snap = registry.snapshot();
  EXPECT_GT(snap.timestamp_ms, 0u);

  const std::string stamp = std::to_string(snap.timestamp_ms);
  const std::string with = snap.to_prometheus(/*with_timestamps=*/true);
  EXPECT_NE(with.find("lbmv_test_stamped_total 1 " + stamp),
            std::string::npos);
  const std::string without = snap.to_prometheus();
  EXPECT_NE(without.find("lbmv_test_stamped_total 1\n"), std::string::npos);
  EXPECT_EQ(without.find(stamp), std::string::npos);
}

TEST(NamingConvention, EveryRegisteredFamilyFollowsTheConvention) {
  SKIP_IF_COMPILED_OUT();
  Registry::global().reset();
  EnabledScope on;

  // Exercise the major subsystems so their lazily-registered families all
  // exist, then audit every name in the global registry.
  const lbmv::model::SystemConfig sim_config({0.01, 0.01, 0.02}, 3.0);
  const lbmv::core::CompBonusMechanism mechanism;
  lbmv::sim::ProtocolOptions options;
  options.horizon = 200.0;
  options.warmup_fraction = 0.0;
  const lbmv::sim::VerifiedProtocol protocol(mechanism, options);
  (void)protocol.run_round(sim_config,
                           lbmv::model::BidProfile::truthful(sim_config));

  const lbmv::model::SystemConfig game_config({1.0, 2.0, 5.0}, 10.0);
  lbmv::strategy::BestResponseOptions dynamics;
  dynamics.max_rounds = 2;
  (void)lbmv::strategy::best_response_dynamics(mechanism, game_config,
                                               dynamics);

  // Delta-round engine: one O(k) delta plus a forced exact rebuild, so the
  // lbmv_core_* counter/histogram families all register before the audit.
  lbmv::core::DeltaRoundEngine engine(mechanism, game_config.family_ptr(),
                                      game_config.arrival_rate(),
                                      lbmv::model::BidProfile::truthful(
                                          game_config));
  engine.apply(0, 1.5, 1.5);
  (void)engine.scalars();
  engine.rebuild();

  // lbmv_<subsystem>_<metric>; counters additionally end in _total.
  const std::regex counter_re(
      "lbmv_(mech|alloc|core|sim|server|pool|protocol|strategy|monitor|dist)"
      "_[a-z0-9_]+_total");
  const std::regex value_re(
      "lbmv_(mech|alloc|core|sim|server|pool|protocol|strategy|monitor|dist)"
      "_[a-z0-9_]+");
  const auto family = [](const std::string& name) {
    return name.substr(0, name.find('{'));  // strip {key="value"} labels
  };

  const MetricsSnapshot snap = Registry::global().snapshot();
  ASSERT_GT(snap.counters.size() + snap.gauges.size() +
                snap.histograms.size(),
            20u);
  for (const auto& [name, value] : snap.counters) {
    (void)value;
    EXPECT_TRUE(std::regex_match(family(name), counter_re)) << name;
  }
  for (const auto& [name, value] : snap.gauges) {
    (void)value;
    EXPECT_TRUE(std::regex_match(family(name), value_re)) << name;
    EXPECT_EQ(family(name).rfind("_total"), std::string::npos) << name;
  }
  for (const auto& [name, hist] : snap.histograms) {
    (void)hist;
    EXPECT_TRUE(std::regex_match(family(name), value_re)) << name;
    EXPECT_EQ(family(name).rfind("_total"), std::string::npos) << name;
  }
}

}  // namespace

// Property tests for the batch leave-one-out payment engine: the PR
// closed form L_{-i} = R^2 / (S - 1/b_i) must match the generic
// re-solve-each-subsystem path, and the mechanisms rewired onto the batch
// API (comp-bonus, VCG) must reproduce the seed's per-agent recomputation
// — BidProfile::without(i) plus a fresh optimal_latency per agent, and
// VCG's quadratic others_cost loop — to 1e-12 relative error.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "lbmv/alloc/convex_allocator.h"
#include "lbmv/alloc/pr_allocator.h"
#include "lbmv/core/audit.h"
#include "lbmv/core/comp_bonus.h"
#include "lbmv/core/vcg.h"
#include "lbmv/model/bids.h"
#include "lbmv/model/system_config.h"
#include "lbmv/util/error.h"
#include "lbmv/util/rng.h"

namespace {

using lbmv::alloc::ConvexAllocator;
using lbmv::alloc::PRAllocator;
using lbmv::core::CompBonusMechanism;
using lbmv::core::MechanismOutcome;
using lbmv::core::VcgMechanism;
using lbmv::model::BidProfile;
using lbmv::model::LinearFamily;
using lbmv::model::SystemConfig;

std::vector<double> log_uniform_types(std::size_t n, std::uint64_t seed) {
  lbmv::util::Rng rng(seed);
  std::vector<double> t(n);
  for (double& ti : t) {
    ti = std::exp(rng.uniform(std::log(0.2), std::log(20.0)));
  }
  return t;
}

void expect_rel_near(double actual, double expected, double rel_tol,
                     const char* what, std::size_t i) {
  const double scale = std::max(1.0, std::fabs(expected));
  EXPECT_NEAR(actual, expected, rel_tol * scale)
      << what << " diverges at agent " << i;
}

/// The seed's leave-one-out formulation: one profile copy and one full
/// re-solve per agent.  Kept here as the reference the batch engine must
/// reproduce.
std::vector<double> per_agent_leave_one_out(
    const lbmv::alloc::Allocator& allocator,
    const lbmv::model::LatencyFamily& family, const BidProfile& profile,
    double arrival_rate) {
  std::vector<double> out(profile.size());
  BidProfile scratch;
  for (std::size_t i = 0; i < profile.size(); ++i) {
    profile.copy_without_into(i, scratch);
    out[i] = allocator.optimal_latency(family, scratch.bids, arrival_rate);
  }
  return out;
}

class LeaveOneOut : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LeaveOneOut, PrClosedFormMatchesPerAgentRecomputation) {
  const std::size_t n = GetParam();
  const LinearFamily family;
  const PRAllocator allocator;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    lbmv::util::Rng rng(seed * 977);
    const double rate = rng.uniform(1.0, 60.0);
    BidProfile profile;
    profile.bids = log_uniform_types(n, seed);
    profile.executions = profile.bids;
    const auto closed =
        allocator.leave_one_out_latencies(family, profile.bids, rate);
    const auto reference =
        per_agent_leave_one_out(allocator, family, profile, rate);
    ASSERT_EQ(closed.size(), n);
    for (std::size_t i = 0; i < n; ++i) {
      expect_rel_near(closed[i], reference[i], 1e-12, "L_{-i}", i);
    }
  }
}

TEST_P(LeaveOneOut, GenericScratchPathIsBitIdenticalToPerAgentCopies) {
  // The generic fallback feeds optimal_latency the same values in the same
  // order as BidProfile::without, so it is exactly — not just
  // approximately — the seed computation.  ConvexAllocator has no closed
  // form and always takes the fallback; its bisection is deterministic, so
  // even its numeric solves must agree bit for bit.  (Skipped at n = 256:
  // the numeric solver is O(seconds) there; the fallback's equivalence is
  // size-independent.)
  const std::size_t n = GetParam();
  if (n > 64) GTEST_SKIP() << "numeric reference too slow at n=" << n;
  const LinearFamily family;
  const ConvexAllocator allocator;
  BidProfile profile;
  profile.bids = log_uniform_types(n, 11);
  profile.executions = profile.bids;
  const auto batch =
      allocator.leave_one_out_latencies(family, profile.bids, 20.0);
  const auto reference =
      per_agent_leave_one_out(allocator, family, profile, 20.0);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(batch[i], reference[i]) << "agent " << i;
  }
}

TEST_P(LeaveOneOut, CompBonusPaymentsMatchPerAgentRecomputation) {
  const std::size_t n = GetParam();
  const LinearFamily family;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    lbmv::util::Rng rng(seed * 31);
    const double rate = rng.uniform(1.0, 60.0);
    const SystemConfig config(log_uniform_types(n, seed), rate);
    // Random deviation so the test covers bid != execution profiles.
    const std::size_t deviator =
        static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
    const BidProfile profile = BidProfile::deviate(
        config, deviator, rng.uniform(0.5, 2.0), rng.uniform(1.0, 3.0));

    const CompBonusMechanism mechanism;
    const MechanismOutcome outcome = mechanism.run(config, profile);

    // Seed algorithm: C_i + (L_{-i} - L) with L_{-i} recomputed per agent.
    const auto loo = per_agent_leave_one_out(mechanism.allocator(), family,
                                             profile, rate);
    for (std::size_t i = 0; i < n; ++i) {
      const double xi = outcome.allocation[i];
      const double expected_payment =
          profile.executions[i] * xi * xi + (loo[i] - outcome.actual_latency);
      expect_rel_near(outcome.agents[i].payment, expected_payment, 1e-12,
                      "comp-bonus payment", i);
    }
  }
}

TEST_P(LeaveOneOut, VcgPaymentsMatchQuadraticReference)
{
  const std::size_t n = GetParam();
  const LinearFamily family;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    lbmv::util::Rng rng(seed * 67);
    const double rate = rng.uniform(1.0, 60.0);
    const SystemConfig config(log_uniform_types(n, seed + 100), rate);
    const BidProfile profile = BidProfile::truthful(config);

    const VcgMechanism mechanism;
    const MechanismOutcome outcome = mechanism.run(config, profile);

    // Seed algorithm: per-agent leave-one-out plus the O(n) inner
    // others_cost sum that skipped agent i explicitly.
    const auto loo = per_agent_leave_one_out(mechanism.allocator(), family,
                                             profile, rate);
    for (std::size_t i = 0; i < n; ++i) {
      double others_cost = 0.0;
      for (std::size_t j = 0; j < n; ++j) {
        if (j == i) continue;
        const double xj = outcome.allocation[j];
        others_cost += profile.bids[j] * xj * xj;
      }
      expect_rel_near(outcome.agents[i].payment, loo[i] - others_cost, 1e-12,
                      "VCG payment", i);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, LeaveOneOut,
                         ::testing::Values<std::size_t>(2, 3, 17, 256));

TEST(LeaveOneOut, RequiresAtLeastTwoComputers) {
  const LinearFamily family;
  const PRAllocator allocator;
  const std::vector<double> one{1.0};
  EXPECT_THROW(
      (void)allocator.leave_one_out_latencies(family, one, 10.0),
      lbmv::util::PreconditionError);
  EXPECT_THROW((void)lbmv::alloc::pr_leave_one_out_latencies(one, 10.0),
               lbmv::util::PreconditionError);
}

TEST(LeaveOneOut, CatastrophicCancellationIsDiagnosedNotSilent) {
  // One agent a thousand billion times faster than the rest combined: the
  // closed form's denominator S - 1/t_i cancels to a value carrying no
  // correct digits.  The seed formulation silently returned that noise as
  // L_{-i}; the kernel now refuses with a diagnostic naming the agent.
  const std::vector<double> dominated{1e-12, 1.0};
  EXPECT_THROW((void)lbmv::alloc::pr_leave_one_out_latencies(dominated, 10.0),
               lbmv::util::PreconditionError);
  try {
    (void)lbmv::alloc::pr_leave_one_out_latencies(dominated, 10.0);
    FAIL() << "expected PreconditionError";
  } catch (const lbmv::util::PreconditionError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("numerically unresolvable"), std::string::npos)
        << what;
    EXPECT_NE(what.find("agent 0"), std::string::npos) << what;
  }
}

TEST(LeaveOneOut, ExactCancellationToInfinityIsAlsoCaught) {
  // 1/1e300 underflows against S = 1e300, so S - 1/t_0 is exactly zero and
  // the seed's "closed form" returned +infinity for agent 0's subsystem.
  const std::vector<double> degenerate{1e-300, 1e300};
  EXPECT_THROW(
      (void)lbmv::alloc::pr_leave_one_out_latencies(degenerate, 10.0),
      lbmv::util::PreconditionError);
}

TEST(LeaveOneOut, WideButResolvableSpreadStillSolves) {
  // Six orders of magnitude between fastest and slowest stays well inside
  // the relative-gap guard and must agree with the per-agent reference.
  const LinearFamily family;
  const PRAllocator allocator;
  BidProfile profile;
  profile.bids = {1e-3, 1.0, 1e3};
  profile.executions = profile.bids;
  const auto closed =
      lbmv::alloc::pr_leave_one_out_latencies(profile.bids, 5.0);
  const auto reference =
      per_agent_leave_one_out(allocator, family, profile, 5.0);
  ASSERT_EQ(closed.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_TRUE(std::isfinite(closed[i])) << "agent " << i;
    // The i = 0 subsystem loses ~3 digits to the (guarded) cancellation,
    // which still leaves 1e-9 relative agreement with the direct re-solve.
    expect_rel_near(closed[i], reference[i], 1e-9, "L_{-i}", i);
  }
}

// ---------------------------------------------------------------------------
// Incremental audit context vs full mechanism re-runs.

TEST(IncrementalAudit, MatchesFullRecomputationOnRandomInstances) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    lbmv::util::Rng rng(seed * 131);
    const auto n = static_cast<std::size_t>(rng.uniform_int(2, 12));
    const SystemConfig config(log_uniform_types(n, seed),
                              rng.uniform(1.0, 60.0));
    const CompBonusMechanism mechanism;
    const lbmv::core::TruthfulnessAuditor auditor(mechanism);
    lbmv::core::AuditOptions fast;
    fast.parallel = false;
    fast.keep_grid = true;
    lbmv::core::AuditOptions slow = fast;
    slow.incremental = false;
    const std::size_t agent =
        static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
    const auto a = auditor.audit_agent(config, agent, fast);
    const auto b = auditor.audit_agent(config, agent, slow);
    const double scale = std::max(1.0, std::fabs(b.truthful_utility));
    EXPECT_NEAR(a.truthful_utility, b.truthful_utility, 1e-9 * scale);
    EXPECT_NEAR(a.max_gain, b.max_gain, 1e-9 * scale);
    ASSERT_EQ(a.grid.size(), b.grid.size());
    for (std::size_t k = 0; k < a.grid.size(); ++k) {
      EXPECT_NEAR(a.grid[k].utility, b.grid[k].utility,
                  1e-9 * std::max(1.0, std::fabs(b.grid[k].utility)))
          << "grid point " << k;
    }
  }
}

TEST(IncrementalAudit, ContextHonoursNonTruthfulOpponents) {
  // The fast path must freeze the *given* base profile, not the truthful
  // one — Theorem 3.1 quantifies over arbitrary opposing bids.
  const SystemConfig config({1.0, 2.0, 5.0}, 12.0);
  const CompBonusMechanism mechanism;
  const lbmv::core::TruthfulnessAuditor auditor(mechanism);
  BidProfile base = BidProfile::truthful(config);
  base.bids[1] = 4.0;
  base.executions[1] = 4.0;
  lbmv::core::AuditOptions fast;
  lbmv::core::AuditOptions slow;
  slow.incremental = false;
  const auto a = auditor.audit_agent(config, 0, base, fast);
  const auto b = auditor.audit_agent(config, 0, base, slow);
  EXPECT_NEAR(a.truthful_utility, b.truthful_utility, 1e-9);
  EXPECT_NEAR(a.max_gain, b.max_gain, 1e-9);
  EXPECT_DOUBLE_EQ(a.best.bid_mult, b.best.bid_mult);
  EXPECT_DOUBLE_EQ(a.best.exec_mult, b.best.exec_mult);
}

TEST(IncrementalAudit, BidBasisVariantAlsoHasAFastPath) {
  const SystemConfig config({1.0, 2.0, 5.0}, 12.0);
  const CompBonusMechanism mechanism(lbmv::core::default_allocator(),
                                     lbmv::core::CompensationBasis::kBid);
  const lbmv::core::TruthfulnessAuditor auditor(mechanism);
  lbmv::core::AuditOptions fast;
  fast.parallel = false;
  lbmv::core::AuditOptions slow = fast;
  slow.incremental = false;
  const auto a = auditor.audit_agent(config, 1, fast);
  const auto b = auditor.audit_agent(config, 1, slow);
  EXPECT_NEAR(a.truthful_utility, b.truthful_utility, 1e-9);
  EXPECT_NEAR(a.max_gain, b.max_gain, 1e-9);
}

TEST(IncrementalAudit, NonLinearFamilyFallsBackToFullRuns) {
  // M/M/1 + ConvexAllocator has no closed-form context; make_utility_context
  // must decline and the audit must still work through run().
  auto family = std::make_shared<lbmv::model::MM1Family>();
  const SystemConfig config({0.2, 0.25, 1.0 / 3.0}, 4.0, family);
  const CompBonusMechanism mechanism(std::make_shared<ConvexAllocator>());
  EXPECT_EQ(mechanism.make_utility_context(config.family(),
                                           config.arrival_rate(),
                                           BidProfile::truthful(config), 0),
            nullptr);
  const lbmv::core::TruthfulnessAuditor auditor(mechanism);
  lbmv::core::AuditOptions options;
  options.bid_multipliers = {0.9, 1.0, 1.1};
  options.exec_multipliers = {1.0, 1.2};
  const auto report = auditor.audit_agent(config, 0, options);
  EXPECT_TRUE(report.truthful_dominant(1e-6));
}

TEST(IncrementalAudit, AuditAllParallelAgreesWithSequential) {
  const SystemConfig config(log_uniform_types(9, 5), 24.0);
  const CompBonusMechanism mechanism;
  const lbmv::core::TruthfulnessAuditor auditor(mechanism);
  lbmv::core::AuditOptions par;
  par.parallel = true;
  lbmv::core::AuditOptions seq;
  seq.parallel = false;
  const auto a = auditor.audit_all(config, par);
  const auto b = auditor.audit_all(config, seq);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].truthful_utility, b[i].truthful_utility);
    EXPECT_DOUBLE_EQ(a[i].max_gain, b[i].max_gain);
    EXPECT_EQ(a[i].agent, b[i].agent);
  }
}

// ---------------------------------------------------------------------------
// In-place copy helpers.

TEST(CopyWithoutInto, MatchesWithoutAndReusesCapacity) {
  BidProfile profile;
  profile.bids = {1.0, 2.0, 3.0, 4.0};
  profile.executions = {1.5, 2.5, 3.5, 4.5};
  BidProfile scratch;
  for (std::size_t i = 0; i < profile.size(); ++i) {
    profile.copy_without_into(i, scratch);
    const BidProfile reference = profile.without(i);
    EXPECT_EQ(scratch.bids, reference.bids) << "removed " << i;
    EXPECT_EQ(scratch.executions, reference.executions) << "removed " << i;
  }
  EXPECT_THROW(profile.copy_without_into(7, scratch),
               lbmv::util::PreconditionError);
}

TEST(CopyWithoutInto, SystemConfigVariantMatchesWithout) {
  const SystemConfig config({1.0, 2.0, 3.0}, 6.0);
  std::vector<double> types;
  for (std::size_t i = 0; i < config.size(); ++i) {
    config.copy_without_into(i, types);
    const SystemConfig reference = config.without(i);
    ASSERT_EQ(types.size(), reference.size());
    for (std::size_t j = 0; j < types.size(); ++j) {
      EXPECT_EQ(types[j], reference.true_values()[j]);
    }
  }
  EXPECT_THROW(config.copy_without_into(3, types),
               lbmv::util::PreconditionError);
}

}  // namespace

// Unit tests for the discrete-event engine.

#include <gtest/gtest.h>

#include <vector>

#include "lbmv/sim/engine.h"
#include "lbmv/util/error.h"

namespace {

using lbmv::sim::Simulation;

TEST(Engine, ProcessesEventsInTimeOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.schedule(3.0, [&] { order.push_back(3); });
  sim.schedule(1.0, [&] { order.push_back(1); });
  sim.schedule(2.0, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
  EXPECT_EQ(sim.processed(), 3u);
}

TEST(Engine, EqualTimestampsKeepSchedulingOrder) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule(5.0, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Engine, HandlersCanScheduleMoreWork) {
  Simulation sim;
  int count = 0;
  std::function<void()> tick = [&] {
    if (++count < 5) sim.schedule_after(1.0, tick);
  };
  sim.schedule(0.0, tick);
  sim.run();
  EXPECT_EQ(count, 5);
  EXPECT_DOUBLE_EQ(sim.now(), 4.0);
}

TEST(Engine, SchedulingInThePastThrows) {
  Simulation sim;
  sim.schedule(2.0, [] {});
  sim.run();
  EXPECT_THROW(sim.schedule(1.0, [] {}), lbmv::util::PreconditionError);
  EXPECT_THROW(sim.schedule_after(-0.5, [] {}),
               lbmv::util::PreconditionError);
}

TEST(Engine, NullHandlerRejected) {
  Simulation sim;
  EXPECT_THROW(sim.schedule(1.0, nullptr), lbmv::util::PreconditionError);
}

TEST(Engine, StepReturnsFalseWhenEmpty) {
  Simulation sim;
  EXPECT_FALSE(sim.step());
  sim.schedule(1.0, [] {});
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
}

TEST(Engine, RunUntilAdvancesClockWithoutFutureEvents) {
  Simulation sim;
  int fired = 0;
  sim.schedule(1.0, [&] { ++fired; });
  sim.schedule(10.0, [&] { ++fired; });
  sim.run_until(5.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
  EXPECT_EQ(sim.pending(), 1u);
  sim.run();
  EXPECT_EQ(fired, 2);
  EXPECT_THROW(sim.run_until(3.0), lbmv::util::PreconditionError);
}

TEST(Engine, ClockIsMonotoneAcrossManyRandomishEvents) {
  Simulation sim;
  double last_seen = -1.0;
  bool monotone = true;
  for (int i = 0; i < 1000; ++i) {
    const double t = static_cast<double>((i * 7919) % 997);
    sim.schedule(t, [&, t] {
      if (t < last_seen) monotone = false;
      last_seen = t;
    });
  }
  sim.run();
  EXPECT_TRUE(monotone);
  EXPECT_EQ(sim.processed(), 1000u);
}

}  // namespace

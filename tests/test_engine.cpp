// Unit tests for the discrete-event engine.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "lbmv/sim/engine.h"
#include "lbmv/util/error.h"

namespace {

using lbmv::sim::Simulation;

TEST(Engine, ProcessesEventsInTimeOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.schedule(3.0, [&] { order.push_back(3); });
  sim.schedule(1.0, [&] { order.push_back(1); });
  sim.schedule(2.0, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
  EXPECT_EQ(sim.processed(), 3u);
}

TEST(Engine, EqualTimestampsKeepSchedulingOrder) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule(5.0, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Engine, HandlersCanScheduleMoreWork) {
  Simulation sim;
  int count = 0;
  std::function<void()> tick = [&] {
    if (++count < 5) sim.schedule_after(1.0, tick);
  };
  sim.schedule(0.0, tick);
  sim.run();
  EXPECT_EQ(count, 5);
  EXPECT_DOUBLE_EQ(sim.now(), 4.0);
}

TEST(Engine, SchedulingInThePastThrows) {
  Simulation sim;
  sim.schedule(2.0, [] {});
  sim.run();
  EXPECT_THROW(sim.schedule(1.0, [] {}), lbmv::util::PreconditionError);
  EXPECT_THROW(sim.schedule_after(-0.5, [] {}),
               lbmv::util::PreconditionError);
}

TEST(Engine, NullHandlerRejected) {
  Simulation sim;
  EXPECT_THROW(sim.schedule(1.0, nullptr), lbmv::util::PreconditionError);
}

TEST(Engine, StepReturnsFalseWhenEmpty) {
  Simulation sim;
  EXPECT_FALSE(sim.step());
  sim.schedule(1.0, [] {});
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
}

TEST(Engine, RunUntilAdvancesClockWithoutFutureEvents) {
  Simulation sim;
  int fired = 0;
  sim.schedule(1.0, [&] { ++fired; });
  sim.schedule(10.0, [&] { ++fired; });
  sim.run_until(5.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
  EXPECT_EQ(sim.pending(), 1u);
  sim.run();
  EXPECT_EQ(fired, 2);
  EXPECT_THROW(sim.run_until(3.0), lbmv::util::PreconditionError);
}

TEST(Engine, ClockIsMonotoneAcrossManyRandomishEvents) {
  Simulation sim;
  double last_seen = -1.0;
  bool monotone = true;
  for (int i = 0; i < 1000; ++i) {
    const double t = static_cast<double>((i * 7919) % 997);
    sim.schedule(t, [&, t] {
      if (t < last_seen) monotone = false;
      last_seen = t;
    });
  }
  sim.run();
  EXPECT_TRUE(monotone);
  EXPECT_EQ(sim.processed(), 1000u);
}

// ---- Typed events ---------------------------------------------------------

/// Sink that records every (kind, time) it receives and can re-schedule.
struct RecordingSink final : lbmv::sim::EventSink {
  std::vector<std::pair<lbmv::sim::EventKind, double>> fired;
  int reschedule_at_same_time = 0;

  void on_sim_event(Simulation& sim, lbmv::sim::EventKind kind) override {
    fired.emplace_back(kind, sim.now());
    if (reschedule_at_same_time > 0) {
      --reschedule_at_same_time;
      sim.schedule_event(sim.now(), lbmv::sim::EventKind::kEpochBoundary,
                         this);
    }
  }
};

TEST(Engine, TypedEventsDispatchInTimeOrderWithKinds) {
  Simulation sim;
  RecordingSink sink;
  sim.schedule_event(2.0, lbmv::sim::EventKind::kServiceCompletion, &sink);
  sim.schedule_event(1.0, lbmv::sim::EventKind::kArrival, &sink);
  sim.schedule_event(3.0, lbmv::sim::EventKind::kHorizon, &sink);
  sim.run();
  ASSERT_EQ(sink.fired.size(), 3u);
  EXPECT_EQ(sink.fired[0].first, lbmv::sim::EventKind::kArrival);
  EXPECT_EQ(sink.fired[1].first, lbmv::sim::EventKind::kServiceCompletion);
  EXPECT_EQ(sink.fired[2].first, lbmv::sim::EventKind::kHorizon);
  EXPECT_DOUBLE_EQ(sink.fired[2].second, 3.0);
}

TEST(Engine, TypedAndClosureEventsInterleaveInSchedulingOrder) {
  Simulation sim;
  RecordingSink sink;
  std::vector<int> order;
  sim.schedule(5.0, [&] { order.push_back(0); });
  sim.schedule_event(5.0, lbmv::sim::EventKind::kArrival, &sink);
  sim.schedule(5.0, [&] { order.push_back(2); });
  sim.run();
  // The typed event fired between the two closures (FIFO at equal time).
  ASSERT_EQ(order, (std::vector<int>{0, 2}));
  ASSERT_EQ(sink.fired.size(), 1u);
  EXPECT_EQ(sim.processed(), 3u);
}

TEST(Engine, TypedEventValidation) {
  Simulation sim;
  RecordingSink sink;
  EXPECT_THROW(
      sim.schedule_event(1.0, lbmv::sim::EventKind::kArrival, nullptr),
      lbmv::util::PreconditionError);
  EXPECT_THROW(sim.schedule_event(1.0, lbmv::sim::EventKind::kClosure, &sink),
               lbmv::util::PreconditionError);
  EXPECT_THROW(
      sim.schedule_event_after(-1.0, lbmv::sim::EventKind::kArrival, &sink),
      lbmv::util::PreconditionError);
}

TEST(Engine, ResetForgetsEventsAndClock) {
  Simulation sim;
  int fired = 0;
  sim.schedule(5.0, [&] { ++fired; });
  sim.run_until(1.0);
  sim.reset();
  EXPECT_EQ(sim.pending(), 0u);
  EXPECT_DOUBLE_EQ(sim.now(), 0.0);
  sim.schedule(0.5, [&] { ++fired; });  // before the old event's time: fine
  sim.run();
  EXPECT_EQ(fired, 1);
}

// ---- run_until edge semantics (regression) --------------------------------

TEST(Engine, RunUntilProcessesWorkRescheduledAtExactlyT) {
  // A handler running at exactly t schedules more work at exactly t: the
  // new work must run within the same run_until call (inclusive semantics),
  // in FIFO order, and the call must terminate once the chain stops.
  Simulation sim;
  std::vector<int> order;
  std::function<void(int)> chain = [&](int depth) {
    order.push_back(depth);
    if (depth < 4) {
      sim.schedule(sim.now(), [&, depth] { chain(depth + 1); });
    }
  };
  sim.schedule(2.0, [&] { chain(0); });
  sim.schedule(2.0, [&] { order.push_back(100); });  // pre-scheduled tie
  sim.run_until(2.0);
  // Chain link 1..4 were scheduled *after* the pre-existing tie, so the
  // pre-existing event fires before them (seq FIFO), then the chain drains.
  EXPECT_EQ(order, (std::vector<int>{0, 100, 1, 2, 3, 4}));
  EXPECT_DOUBLE_EQ(sim.now(), 2.0);
  EXPECT_EQ(sim.pending(), 0u);
  EXPECT_EQ(sim.processed(), 6u);
}

TEST(Engine, RunUntilTypedRescheduleAtSameTimeTerminates) {
  Simulation sim;
  RecordingSink sink;
  sink.reschedule_at_same_time = 3;  // bounded same-time chain
  sim.schedule_event(1.0, lbmv::sim::EventKind::kEpochBoundary, &sink);
  sim.run_until(1.0);
  EXPECT_EQ(sink.fired.size(), 4u);  // original + 3 re-schedules
  for (const auto& [kind, time] : sink.fired) EXPECT_DOUBLE_EQ(time, 1.0);
}

TEST(Engine, RunUntilLeavesStrictlyLaterWorkPending) {
  Simulation sim;
  int fired = 0;
  sim.schedule(1.0, [&] {
    ++fired;
    sim.schedule(std::nextafter(1.0, 2.0), [&] { ++fired; });
  });
  sim.run_until(1.0);
  EXPECT_EQ(fired, 1);  // the strictly-later event stays queued
  EXPECT_EQ(sim.pending(), 1u);
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Engine, ClosureSlotsAreRecycled) {
  // The pooled slab must reuse slots: a long self-rescheduling chain keeps
  // at most a handful of closures alive no matter how many events fire.
  Simulation sim;
  int count = 0;
  std::function<void()> tick = [&] {
    if (++count < 10000) sim.schedule_after(1.0, tick);
  };
  sim.schedule(0.0, tick);
  sim.run();
  EXPECT_EQ(count, 10000);
  EXPECT_EQ(sim.processed(), 10000u);
}

}  // namespace

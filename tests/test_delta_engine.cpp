// Differential suite for the cross-round delta engine (DESIGN.md §15): the
// O(k)-maintained aggregates must stay within 1e-9 of a from-scratch
// rebuild across every mechanism and latency family — through bid/execution
// deltas, membership add/remove churn (including remove-then-re-add round
// trips), and 300+ deltas of accumulated drift — while the lazily
// materialized outcome stays bit-identical to the full-round path, and the
// hot loops wired onto the engine (epochs, protocol, learning) reproduce
// the full-round trajectories bit-for-bit at 1, 2 and 8 threads.

#include <gtest/gtest.h>

#include <cmath>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "lbmv/alloc/mm1_allocator.h"
#include "lbmv/alloc/pr_allocator.h"
#include "lbmv/alloc/workload_allocator.h"
#include "lbmv/core/archer_tardos.h"
#include "lbmv/core/comp_bonus.h"
#include "lbmv/core/delta_engine.h"
#include "lbmv/core/no_payment.h"
#include "lbmv/core/vcg.h"
#include "lbmv/model/bids.h"
#include "lbmv/model/latency.h"
#include "lbmv/model/system_config.h"
#include "lbmv/sim/epochs.h"
#include "lbmv/sim/protocol.h"
#include "lbmv/strategy/deviation.h"
#include "lbmv/strategy/learning.h"
#include "lbmv/util/error.h"
#include "lbmv/util/rng.h"
#include "lbmv/util/thread_pool.h"

namespace {

using lbmv::core::BidDelta;
using lbmv::core::DeltaRoundEngine;
using lbmv::core::Mechanism;
using lbmv::core::MechanismOutcome;
using lbmv::core::RoundScalars;
using lbmv::model::LatencyFamily;
using lbmv::util::PreconditionError;

constexpr double kTol = 1e-9;

double rel_err(double a, double b) {
  return std::fabs(a - b) / std::max({1.0, std::fabs(a), std::fabs(b)});
}

/// One (mechanism, family, feasible arrival rate) test case.
struct Case {
  std::string name;
  std::shared_ptr<const Mechanism> mechanism;
  std::shared_ptr<const LatencyFamily> family;
  double arrival_rate;
};

std::vector<double> band_types(std::size_t n, std::uint64_t seed) {
  lbmv::util::Rng rng(seed);
  std::vector<double> t(n);
  for (double& ti : t) ti = 0.8 + 0.5 * rng.uniform();
  return t;
}

/// Every mechanism on every family it supports.  Arrival rates keep every
/// profile this suite perturbs (bids x [0.8, 1.2], executions x [1, 1.05])
/// feasible: M/M/1 stays under half capacity, linear/workload are
/// unconstrained.
std::vector<Case> all_cases(std::size_t n, std::uint64_t seed) {
  using lbmv::core::CompBonusMechanism;
  using lbmv::core::CompensationBasis;
  const auto types = band_types(n, seed);
  double sum_mu = 0.0;
  for (double t : types) sum_mu += 1.0 / t;
  const double mm1_rate = 0.4 * sum_mu;
  const double linear_rate = 20.0;
  const double workload_rate = static_cast<double>(n);

  const auto linear = std::make_shared<const lbmv::model::LinearFamily>();
  const auto mm1 = std::make_shared<const lbmv::model::MM1Family>();
  const auto workload =
      std::make_shared<const lbmv::model::WorkloadFamily>(0.5);
  const auto pr = std::make_shared<const lbmv::alloc::PRAllocator>();
  const auto mm1_alloc = std::make_shared<const lbmv::alloc::MM1Allocator>();
  const auto workload_alloc =
      std::make_shared<const lbmv::alloc::WorkloadAllocator>();

  std::vector<Case> cases;
  const auto add = [&](std::string name,
                       std::shared_ptr<const Mechanism> mech,
                       std::shared_ptr<const LatencyFamily> fam,
                       double rate) {
    cases.push_back({std::move(name), std::move(mech), std::move(fam), rate});
  };
  add("comp_bonus_exec/linear",
      std::make_shared<const CompBonusMechanism>(pr,
                                                 CompensationBasis::kExecution),
      linear, linear_rate);
  add("comp_bonus_bid/linear",
      std::make_shared<const CompBonusMechanism>(pr, CompensationBasis::kBid),
      linear, linear_rate);
  add("vcg/linear", std::make_shared<const lbmv::core::VcgMechanism>(pr),
      linear, linear_rate);
  add("no_payment/linear",
      std::make_shared<const lbmv::core::NoPaymentMechanism>(pr), linear,
      linear_rate);
  add("archer_tardos/linear",
      std::make_shared<const lbmv::core::ArcherTardosMechanism>(), linear,
      linear_rate);
  add("comp_bonus_exec/mm1",
      std::make_shared<const CompBonusMechanism>(mm1_alloc,
                                                 CompensationBasis::kExecution),
      mm1, mm1_rate);
  add("comp_bonus_bid/mm1",
      std::make_shared<const CompBonusMechanism>(mm1_alloc,
                                                 CompensationBasis::kBid),
      mm1, mm1_rate);
  add("vcg/mm1", std::make_shared<const lbmv::core::VcgMechanism>(mm1_alloc),
      mm1, mm1_rate);
  add("no_payment/mm1",
      std::make_shared<const lbmv::core::NoPaymentMechanism>(mm1_alloc), mm1,
      mm1_rate);
  add("comp_bonus_exec/workload",
      std::make_shared<const CompBonusMechanism>(workload_alloc,
                                                 CompensationBasis::kExecution),
      workload, workload_rate);
  add("vcg/workload",
      std::make_shared<const lbmv::core::VcgMechanism>(workload_alloc),
      workload, workload_rate);
  add("no_payment/workload",
      std::make_shared<const lbmv::core::NoPaymentMechanism>(workload_alloc),
      workload, workload_rate);
  return cases;
}

/// Delta-maintained aggregates vs a freshly-built engine on the same planes.
void expect_matches_fresh(DeltaRoundEngine& engine, const Case& c,
                          const std::string& what) {
  DeltaRoundEngine fresh(*c.mechanism, c.family, c.arrival_rate,
                         engine.bids(), engine.executions());
  const RoundScalars a = engine.scalars();
  const RoundScalars b = fresh.scalars();
  EXPECT_LT(rel_err(a.optimal_latency, b.optimal_latency), kTol)
      << c.name << ": " << what;
  EXPECT_LT(rel_err(a.total_cost, b.total_cost), kTol) << c.name << ": "
                                                       << what;
  EXPECT_LT(rel_err(a.actual_latency, b.actual_latency), kTol)
      << c.name << ": " << what;
  EXPECT_LT(rel_err(a.alloc_parameter, b.alloc_parameter), kTol)
      << c.name << ": " << what;
  for (std::size_t i = 0; i < engine.size(); i += 7) {
    EXPECT_LT(rel_err(engine.leave_one_out(i), fresh.leave_one_out(i)), kTol)
        << c.name << ": " << what << " (leave-one-out agent " << i << ")";
  }
  // The optimum must also agree with the allocator queried directly.
  EXPECT_LT(rel_err(a.optimal_latency,
                    c.mechanism->allocator().optimal_latency(
                        *c.family, engine.bids(), c.arrival_rate)),
            kTol)
      << c.name << ": " << what << " (allocator ground truth)";
}

TEST(DeltaVsRebuild, BidDeltasAcrossAllMechanismsAndFamilies) {
  const std::size_t n = 48;
  for (const Case& c : all_cases(n, 11)) {
    const auto types = band_types(n, 11);
    DeltaRoundEngine engine(*c.mechanism, c.family, c.arrival_rate, types,
                            types);
    lbmv::util::Rng rng(17);
    for (int d = 0; d < 100; ++d) {
      const auto agent = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
      const double bid = types[agent] * (0.8 + 0.4 * rng.uniform());
      engine.apply(agent, bid, bid * (1.0 + 0.05 * rng.uniform()));
    }
    expect_matches_fresh(engine, c, "after 100 bid deltas");
  }
}

TEST(DeltaVsRebuild, DriftStaysBoundedAfterHundredsOfDeltas) {
  const std::size_t n = 40;
  for (const Case& c : all_cases(n, 23)) {
    const auto types = band_types(n, 23);
    DeltaRoundEngine engine(*c.mechanism, c.family, c.arrival_rate, types,
                            types);
    lbmv::util::Rng rng(29);
    // 350 deltas crosses several max(64, n) rebuild periods; the drift
    // between rebuilds (and right before one) must stay under the 1e-9
    // contract.
    for (int d = 0; d < 350; ++d) {
      const auto agent = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
      const double bid = types[agent] * (0.8 + 0.4 * rng.uniform());
      engine.apply(agent, bid, bid * (1.0 + 0.05 * rng.uniform()));
      if (d % 97 == 0) (void)engine.scalars();  // query mid-stream too
    }
    EXPECT_LT(engine.deltas_since_rebuild(), std::max<std::size_t>(64, n))
        << c.name;
    expect_matches_fresh(engine, c, "after 350 deltas");
  }
}

TEST(Membership, AddAndRemoveMatchFullRebuild) {
  const std::size_t n = 24;
  for (const Case& c : all_cases(n, 31)) {
    const auto types = band_types(n, 31);
    DeltaRoundEngine engine(*c.mechanism, c.family, c.arrival_rate, types,
                            types);
    lbmv::util::Rng rng(37);
    for (int d = 0; d < 30; ++d) {
      const double roll = rng.uniform();
      if (roll < 0.3 && engine.size() >= 4) {
        engine.remove_agent(static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(engine.size()) - 1)));
      } else if (roll < 0.6) {
        (void)engine.add_agent(0.8 + 0.5 * rng.uniform(),
                               0.8 + 0.6 * rng.uniform());
      } else {
        const auto agent = static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(engine.size()) - 1));
        const double bid = 0.8 + 0.5 * rng.uniform();
        engine.apply(agent, bid, bid * (1.0 + 0.05 * rng.uniform()));
      }
    }
    expect_matches_fresh(engine, c, "after membership churn");
  }
}

TEST(Membership, RemoveThenReAddRoundTripsTheScalars) {
  const std::size_t n = 16;
  for (const Case& c : all_cases(n, 41)) {
    const auto types = band_types(n, 41);
    DeltaRoundEngine engine(*c.mechanism, c.family, c.arrival_rate, types,
                            types);
    const RoundScalars before = engine.scalars();
    // Remove from the middle (exercises the swap-with-last semantics), then
    // re-add the same (bid, execution): the multiset of agents is restored,
    // and every scalar is permutation-invariant.
    const std::size_t victim = n / 2;
    const double bid = engine.bids()[victim];
    const double exec = engine.executions()[victim];
    engine.remove_agent(victim);
    EXPECT_EQ(engine.size(), n - 1) << c.name;
    (void)engine.add_agent(bid, exec);
    EXPECT_EQ(engine.size(), n) << c.name;
    const RoundScalars after = engine.scalars();
    EXPECT_LT(rel_err(before.optimal_latency, after.optimal_latency), kTol)
        << c.name;
    EXPECT_LT(rel_err(before.actual_latency, after.actual_latency), kTol)
        << c.name;
    EXPECT_LT(rel_err(before.alloc_parameter, after.alloc_parameter), kTol)
        << c.name;
    expect_matches_fresh(engine, c, "after remove/re-add round trip");
  }
}

TEST(Outcome, MaterializationIsBitIdenticalToRunInto) {
  const std::size_t n = 32;
  for (const Case& c : all_cases(n, 47)) {
    const auto types = band_types(n, 47);
    DeltaRoundEngine engine(*c.mechanism, c.family, c.arrival_rate, types,
                            types);
    engine.apply(3, types[3] * 1.1, types[3] * 1.12);
    engine.apply(n - 1, types[n - 1] * 0.9, types[n - 1] * 0.93);

    lbmv::core::RoundWorkspace ws;
    MechanismOutcome expected;
    c.mechanism->run_into(*c.family, c.arrival_rate, engine.bids(),
                          engine.executions(), expected, ws);
    const MechanismOutcome& actual = engine.outcome();
    ASSERT_EQ(actual.agents.size(), expected.agents.size()) << c.name;
    EXPECT_EQ(actual.actual_latency, expected.actual_latency) << c.name;
    EXPECT_EQ(actual.reported_latency, expected.reported_latency) << c.name;
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(actual.agents[i].allocation, expected.agents[i].allocation)
          << c.name << " agent " << i;
      EXPECT_EQ(actual.agents[i].payment, expected.agents[i].payment)
          << c.name << " agent " << i;
      EXPECT_EQ(actual.agents[i].utility, expected.agents[i].utility)
          << c.name << " agent " << i;
    }
  }
}

TEST(Sync, QuiescentRoundsReuseEveryCache) {
  const std::size_t n = 12;
  const auto types = band_types(n, 53);
  const lbmv::core::CompBonusMechanism mechanism;
  const lbmv::model::SystemConfig config(types, 20.0);
  DeltaRoundEngine engine(mechanism, config.family_ptr(), 20.0, types, types);
  (void)engine.outcome();
  const std::size_t rebuild_mark = engine.deltas_since_rebuild();

  // Unchanged planes: zero deltas applied, no cache invalidated.
  EXPECT_EQ(engine.sync(types, types), 0u);
  EXPECT_EQ(engine.deltas_since_rebuild(), rebuild_mark);

  // Two changed entries: exactly two deltas, as one delta round.
  auto moved = types;
  moved[2] *= 1.2;
  moved[9] *= 0.85;
  EXPECT_EQ(engine.sync(moved, types), 2u);
  EXPECT_EQ(engine.bids()[2], moved[2]);
  EXPECT_EQ(engine.bids()[9], moved[9]);
}

TEST(Errors, DiagnosticsArePreservedBitForBit) {
  const auto types = band_types(8, 59);
  const lbmv::core::CompBonusMechanism mechanism;
  const lbmv::model::SystemConfig config(types, 20.0);
  const auto family = config.family_ptr();

  // LBMV_REQUIRE decorates what() with the failed expression and source
  // location; the diagnostic text itself must survive verbatim.
  const auto expect_throw = [](auto&& fn, const std::string& message) {
    try {
      fn();
      FAIL() << "expected PreconditionError: " << message;
    } catch (const PreconditionError& e) {
      EXPECT_NE(std::string(e.what()).find(message), std::string::npos)
          << e.what();
    }
  };

  expect_throw(
      [&] {
        DeltaRoundEngine engine(mechanism, family, 20.0,
                                std::vector<double>{1.0},
                                std::vector<double>{1.0});
      },
      "mechanisms require at least two agents");
  expect_throw(
      [&] {
        DeltaRoundEngine engine(mechanism, family, 20.0, types,
                                std::vector<double>{1.0, 2.0});
      },
      "execution vector size mismatch");
  expect_throw(
      [&] { DeltaRoundEngine engine(mechanism, family, 0.0, types, types); },
      "arrival rate must be positive");
  expect_throw(
      [&] {
        auto bad = types;
        bad[3] = -1.0;
        DeltaRoundEngine engine(mechanism, family, 20.0, bad, types);
      },
      "bids must be positive");

  DeltaRoundEngine engine(mechanism, family, 20.0, types, types);
  expect_throw([&] { engine.apply(99, 1.0, 1.0); }, "agent index out of range");
  expect_throw([&] { engine.apply(0, 0.0, 1.0); }, "bids must be positive");
  expect_throw([&] { engine.apply(0, 1.0, -2.0); },
               "execution values must be positive");
  expect_throw([&] { engine.remove_agent(99); }, "agent index out of range");

  // The infeasible M/M/1 round must re-raise the allocator's own typed
  // error through the O(1) scalars path, not a homegrown variant.
  const auto mm1 = std::make_shared<const lbmv::model::MM1Family>();
  const lbmv::core::CompBonusMechanism mm1_mechanism(
      std::make_shared<const lbmv::alloc::MM1Allocator>());
  double sum_mu = 0.0;
  for (double t : types) sum_mu += 1.0 / t;
  DeltaRoundEngine saturated(mm1_mechanism, mm1, 0.5 * sum_mu, types, types);
  // Push every bid up until the committed capacity can no longer carry R.
  for (std::size_t i = 0; i < types.size(); ++i) {
    saturated.apply(i, types[i] * 20.0, types[i] * 20.0);
  }
  EXPECT_THROW((void)saturated.scalars(), PreconditionError);
}

TEST(CommitBatch, MatchesSequentialCommitsBitForBit) {
  const std::size_t n = 20;
  for (const Case& c : all_cases(n, 61)) {
    const auto types = band_types(n, 61);
    const lbmv::model::SystemConfig config(types, c.arrival_rate, c.family);
    lbmv::strategy::DeviationEvaluator sequential(*c.mechanism, config);
    lbmv::strategy::DeviationEvaluator batched(*c.mechanism, config);

    lbmv::util::Rng rng(67);
    for (int round = 0; round < 5; ++round) {
      std::vector<BidDelta> deltas;
      for (std::size_t i = 0; i < n; i += 3) {
        const double bid = types[i] * (0.8 + 0.4 * rng.uniform());
        deltas.push_back({i, bid, bid * (1.0 + 0.05 * rng.uniform())});
      }
      for (const BidDelta& d : deltas) {
        sequential.commit(d.agent, d.bid, d.execution);
      }
      batched.commit_batch(deltas);

      MechanismOutcome a;
      MechanismOutcome b;
      sequential.outcome_into(a);
      batched.outcome_into(b);
      ASSERT_EQ(a.agents.size(), b.agents.size()) << c.name;
      EXPECT_EQ(a.actual_latency, b.actual_latency) << c.name;
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(a.agents[i].allocation, b.agents[i].allocation) << c.name;
        EXPECT_EQ(a.agents[i].payment, b.agents[i].payment) << c.name;
        EXPECT_EQ(a.agents[i].utility, b.agents[i].utility) << c.name;
      }
    }
  }
}

TEST(Epochs, TrajectoryIsBitIdenticalToTheFullRoundPath) {
  const lbmv::core::CompBonusMechanism mechanism;
  const lbmv::model::SystemConfig config(band_types(10, 71), 20.0);
  lbmv::sim::EpochOptions options;
  options.epochs = 40;
  options.bid_lags = {0, 1, 2, 0, 3, 0, 1, 0, 2, 0};

  const lbmv::sim::EpochReport report =
      lbmv::sim::run_epochs(mechanism, config, options);
  ASSERT_EQ(report.records.size(), 40u);

  // Replay every epoch through the full-round path: bids are the lagged
  // true values (initial values before epoch 0), executions the current
  // ones — exactly what the engine-backed loop committed.
  lbmv::core::RoundWorkspace ws;
  for (std::size_t e = 0; e < report.records.size(); ++e) {
    lbmv::model::BidProfile profile;
    const std::size_t n = config.size();
    profile.bids.resize(n);
    profile.executions.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      const auto lag = static_cast<std::size_t>(options.bid_lags[i]);
      profile.bids[i] = e >= lag
                            ? report.records[e - lag].true_values[i]
                            : config.true_values()[i];
      profile.executions[i] = report.records[e].true_values[i];
    }
    const lbmv::model::SystemConfig epoch_config(
        report.records[e].true_values, config.arrival_rate(),
        config.family_ptr());
    MechanismOutcome expected;
    mechanism.run_into(epoch_config, profile, expected, ws);
    const MechanismOutcome& actual = report.records[e].outcome;
    EXPECT_EQ(actual.actual_latency, expected.actual_latency) << "epoch " << e;
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(actual.agents[i].utility, expected.agents[i].utility)
          << "epoch " << e << " agent " << i;
      EXPECT_EQ(actual.agents[i].payment, expected.agents[i].payment)
          << "epoch " << e << " agent " << i;
    }
  }
}

TEST(Epochs, ReplicatedRunsAreThreadCountInvariant) {
  const lbmv::core::CompBonusMechanism mechanism;
  const lbmv::model::SystemConfig config(band_types(8, 73), 20.0);
  lbmv::sim::EpochOptions options;
  options.epochs = 15;

  lbmv::sim::ReplicationOptions replication;
  replication.replications = 6;
  const auto run_with = [&](std::size_t threads) {
    lbmv::util::ThreadPool pool(threads);
    lbmv::sim::ReplicationOptions opts = replication;
    opts.pool = &pool;
    return lbmv::sim::run_epochs_replicated(mechanism, config, options, opts);
  };
  const auto one = run_with(1);
  const auto two = run_with(2);
  const auto eight = run_with(8);
  ASSERT_EQ(one.runs.size(), 6u);
  for (std::size_t r = 0; r < one.runs.size(); ++r) {
    EXPECT_EQ(one.runs[r].mean_efficiency, two.runs[r].mean_efficiency);
    EXPECT_EQ(one.runs[r].mean_efficiency, eight.runs[r].mean_efficiency);
    for (std::size_t e = 0; e < one.runs[r].records.size(); ++e) {
      EXPECT_EQ(one.runs[r].records[e].outcome.actual_latency,
                eight.runs[r].records[e].outcome.actual_latency);
    }
  }
}

TEST(Learning, TrajectoriesAreThreadCountInvariant) {
  const lbmv::core::CompBonusMechanism mechanism;
  const lbmv::model::SystemConfig config(band_types(6, 79), 12.0);
  lbmv::strategy::LearningOptions options;
  options.rounds = 40;

  const auto run_with = [&](std::size_t threads) {
    lbmv::util::ThreadPool pool(threads);
    return lbmv::strategy::run_learning_replicated(mechanism, config, options,
                                                   4, &pool, 1);
  };
  const auto one = run_with(1);
  const auto two = run_with(2);
  const auto eight = run_with(8);
  ASSERT_EQ(one.replications.size(), 4u);
  for (std::size_t r = 0; r < 4; ++r) {
    ASSERT_EQ(one.replications[r].latency_trace.size(),
              eight.replications[r].latency_trace.size());
    for (std::size_t t = 0; t < one.replications[r].latency_trace.size();
         ++t) {
      EXPECT_EQ(one.replications[r].latency_trace[t],
                two.replications[r].latency_trace[t]);
      EXPECT_EQ(one.replications[r].latency_trace[t],
                eight.replications[r].latency_trace[t]);
    }
    EXPECT_EQ(one.replications[r].final_greedy_latency,
              eight.replications[r].final_greedy_latency);
  }
}

TEST(Protocol, SharedEngineDoubleRoundMatchesTwoFullRounds) {
  const lbmv::core::CompBonusMechanism mechanism;
  const lbmv::model::SystemConfig config(band_types(5, 83), 8.0);
  lbmv::sim::ProtocolOptions options;
  options.horizon = 300.0;
  options.warmup_fraction = 0.0;
  const lbmv::sim::VerifiedProtocol protocol(mechanism, options);
  const auto intents = lbmv::model::BidProfile::truthful(config);
  const lbmv::sim::RoundReport report = protocol.run_round(config, intents);

  // Reconstruct the verified profile the protocol built from its execution
  // estimates and re-run both payment rounds through the full path.
  auto verified = intents;
  for (std::size_t i = 0; i < config.size(); ++i) {
    verified.executions[i] = report.estimated_execution[i];
  }
  lbmv::core::RoundWorkspace ws;
  MechanismOutcome expected_verified;
  MechanismOutcome expected_oracle;
  mechanism.run_into(config, verified, expected_verified, ws);
  mechanism.run_into(config, intents, expected_oracle, ws);
  EXPECT_EQ(report.outcome.actual_latency, expected_verified.actual_latency);
  EXPECT_EQ(report.oracle_outcome.actual_latency,
            expected_oracle.actual_latency);
  for (std::size_t i = 0; i < config.size(); ++i) {
    EXPECT_EQ(report.outcome.agents[i].payment,
              expected_verified.agents[i].payment);
    EXPECT_EQ(report.oracle_outcome.agents[i].payment,
              expected_oracle.agents[i].payment);
  }
}

}  // namespace

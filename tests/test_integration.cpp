// End-to-end scenarios exercising the whole stack the way the examples and
// benches do: strategies -> protocol (simulated execution + verification)
// -> mechanism payments -> analysis.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "lbmv/alloc/convex_allocator.h"
#include "lbmv/analysis/paper_experiments.h"
#include "lbmv/core/audit.h"
#include "lbmv/core/comp_bonus.h"
#include "lbmv/core/no_payment.h"
#include "lbmv/core/vcg.h"
#include "lbmv/sim/protocol.h"
#include "lbmv/strategy/best_response.h"
#include "lbmv/strategy/strategy.h"
#include "lbmv/util/rng.h"

namespace {

using namespace lbmv;

TEST(Integration, StrategiesThroughSimulatedProtocolRound) {
  // A small cluster where one machine overbids and another slacks; the
  // round must verify the slack, pay the overbidder less than the truthful
  // peer of equal speed, and use O(n) messages.
  const model::SystemConfig config({0.01, 0.01, 0.01, 0.02}, 4.0);
  strategy::TruthfulStrategy truthful;
  strategy::ScalingStrategy overbidder(2.0, 2.0);  // consistent overbid
  strategy::SlackExecutionStrategy slacker(1.8);
  std::vector<const strategy::Strategy*> assigned{&truthful, &overbidder,
                                                  &slacker, &truthful};
  util::Rng rng(123);
  const model::BidProfile intents =
      strategy::apply_strategies(config, assigned, rng);

  core::CompBonusMechanism mechanism;
  sim::ProtocolOptions options;
  options.horizon = 30000.0;
  options.seed = 11;
  sim::VerifiedProtocol protocol(mechanism, options);
  const sim::RoundReport report = protocol.run_round(config, intents);

  EXPECT_EQ(report.messages, 12u);
  // Verification exposed the slacker (true value 0.01, runs at 0.018).
  EXPECT_GT(report.estimated_execution[2], 0.014);
  // Truthful agent 0 out-earns the equal-speed overbidder.
  EXPECT_GT(report.outcome.agents[0].utility,
            report.outcome.agents[1].utility);
  // Utilities are bonuses anchored to the measured latency, so the
  // equal-bid slacker earns (essentially) the same as its truthful peer —
  // the slack is socialised.  Its *incentive* not to slack is the
  // counterfactual: with everyone honest, everyone (slacker included)
  // earns more.
  EXPECT_NEAR(report.outcome.agents[2].utility,
              report.outcome.agents[0].utility,
              0.05 * std::fabs(report.outcome.agents[0].utility));
  const sim::RoundReport honest_round =
      protocol.run_round(config, model::BidProfile::truthful(config));
  for (std::size_t i = 0; i < config.size(); ++i) {
    EXPECT_GT(honest_round.outcome.agents[i].utility,
              report.outcome.agents[i].utility)
        << "agent " << i;
  }
}

TEST(Integration, PaperScenarioEndToEndOnAnalyticPath) {
  // The eight Table 2 experiments, audited: the deviating agent never beats
  // its True1 utility, reproducing the paper's Figure 2 message.
  const model::SystemConfig config = analysis::paper_table1_config();
  core::CompBonusMechanism mechanism;
  const auto results = analysis::run_paper_experiments(mechanism, config);
  const double u_true1 = results.front().outcome.agents[0].utility;
  for (const auto& r : results) {
    EXPECT_LE(r.outcome.agents[0].utility, u_true1 + 1e-9)
        << r.experiment.name;
  }
}

TEST(Integration, MechanismsDisagreeExactlyWhenVerificationMatters) {
  // With fully consistent behaviour all three truthful mechanisms pay out
  // closely related amounts; inject execution slack and only the verified
  // mechanism reacts.
  const model::SystemConfig config({1.0, 2.0, 4.0}, 8.0);
  core::CompBonusMechanism verified;
  core::VcgMechanism vcg;
  const model::BidProfile honest = model::BidProfile::truthful(config);
  const model::BidProfile slack =
      model::BidProfile::deviate(config, 1, 1.0, 2.0);

  const auto v_honest = verified.run(config, honest);
  const auto g_honest = vcg.run(config, honest);
  EXPECT_NEAR(v_honest.agents[1].payment, g_honest.agents[1].payment, 1e-9);

  // The slacker's own payment is the Clarke payment under both mechanisms
  // (unilateral-deviation identity), but only the verified mechanism
  // propagates the measured damage into the *bystanders'* payments.
  const auto v_slack = verified.run(config, slack);
  const auto g_slack = vcg.run(config, slack);
  EXPECT_NEAR(g_slack.agents[1].payment, g_honest.agents[1].payment, 1e-9);
  EXPECT_NEAR(v_slack.agents[1].payment, v_honest.agents[1].payment, 1e-9);
  EXPECT_LT(v_slack.agents[1].utility, v_honest.agents[1].utility);
  for (std::size_t j : {std::size_t{0}, std::size_t{2}}) {
    EXPECT_NEAR(g_slack.agents[j].payment, g_honest.agents[j].payment, 1e-9);
    EXPECT_LT(v_slack.agents[j].payment, g_slack.agents[j].payment);
  }
}

TEST(Integration, Mm1ExtensionFullPipeline) {
  // The companion-paper model end to end: convex allocator + mechanism +
  // audit on an M/M/1 system.
  auto family = std::make_shared<model::MM1Family>();
  // mu = {10, 5, 2}; R = 5 keeps every leave-one-out subsystem feasible
  // (min leave-one-out capacity is 5 + 2 = 7 > 5).
  const model::SystemConfig config({0.1, 0.2, 0.5}, 5.0, family);
  core::CompBonusMechanism mechanism(
      std::make_shared<alloc::ConvexAllocator>());
  EXPECT_TRUE(core::voluntary_participation_holds(mechanism, config, 1e-6));
  core::TruthfulnessAuditor auditor(mechanism);
  core::AuditOptions options;
  // Keep bids inside the feasibility region.
  options.bid_multipliers = {0.8, 0.9, 1.0, 1.1, 1.3, 1.6};
  options.exec_multipliers = {1.0, 1.1, 1.25};
  for (std::size_t agent = 0; agent < config.size(); ++agent) {
    const auto report = auditor.audit_agent(config, agent, options);
    EXPECT_TRUE(report.truthful_dominant(1e-5))
        << "agent " << agent << " gain " << report.max_gain;
  }
}

TEST(Integration, DynamicsAndAuditAgreeOnNoPaymentFailure) {
  const model::SystemConfig config({1.0, 2.0, 4.0}, 8.0);
  core::NoPaymentMechanism broken;
  core::TruthfulnessAuditor auditor(broken);
  const auto audit_report = auditor.audit_agent(config, 0);
  EXPECT_GT(audit_report.max_gain, 0.0);

  strategy::BestResponseOptions options;
  options.max_rounds = 8;
  options.optimize_execution = false;
  const auto dynamics =
      strategy::best_response_dynamics(broken, config, options);
  EXPECT_GT(dynamics.max_relative_untruthfulness, 1.0);
  // The behavioural collapse and the audit point the same way: agents
  // inflate bids.
  EXPECT_GT(dynamics.final_bids[0], config.true_value(0));
}

}  // namespace

// Tests for the VCG baseline mechanism.

#include <gtest/gtest.h>

#include <vector>

#include "lbmv/analysis/paper_config.h"
#include "lbmv/core/comp_bonus.h"
#include "lbmv/core/vcg.h"
#include "lbmv/model/bids.h"

namespace {

using lbmv::analysis::paper_table1_config;
using lbmv::core::CompBonusMechanism;
using lbmv::core::MechanismOutcome;
using lbmv::core::VcgMechanism;
using lbmv::model::BidProfile;
using lbmv::model::SystemConfig;

TEST(Vcg, TruthfulProfileCoincidesWithCompBonus) {
  // When bids == executions, the Clarke payment equals the
  // compensation-and-bonus payment (both are c_i + L_{-i} - L).
  const SystemConfig config = paper_table1_config();
  VcgMechanism vcg;
  CompBonusMechanism comp_bonus;
  const BidProfile truthful = BidProfile::truthful(config);
  const auto a = vcg.run(config, truthful);
  const auto b = comp_bonus.run(config, truthful);
  for (std::size_t i = 0; i < config.size(); ++i) {
    EXPECT_NEAR(a.agents[i].payment, b.agents[i].payment, 1e-9);
    EXPECT_NEAR(a.agents[i].utility, b.agents[i].utility, 1e-9);
  }
}

TEST(Vcg, PaymentIgnoresExecutionValues) {
  // No verification: slacking changes the agent's valuation but not its
  // payment.
  const SystemConfig config({1.0, 2.0, 5.0}, 10.0);
  VcgMechanism vcg;
  const auto honest = vcg.run(config, BidProfile::truthful(config));
  const auto slack =
      vcg.run(config, BidProfile::deviate(config, 0, 1.0, 3.0));
  for (std::size_t i = 0; i < config.size(); ++i) {
    EXPECT_NEAR(slack.agents[i].payment, honest.agents[i].payment, 1e-10)
        << "agent " << i;
  }
  EXPECT_LT(slack.agents[0].utility, honest.agents[0].utility);
}

TEST(Vcg, TruthfulBiddingIsDominantOnAGrid) {
  const SystemConfig config({1.0, 2.0, 4.0, 8.0}, 16.0);
  VcgMechanism vcg;
  const double truthful_u =
      vcg.run(config, BidProfile::truthful(config)).agents[1].utility;
  for (double mult : {0.2, 0.5, 0.8, 1.2, 2.0, 5.0}) {
    const auto outcome =
        vcg.run(config, BidProfile::deviate(config, 1, mult, 1.0));
    EXPECT_LE(outcome.agents[1].utility, truthful_u + 1e-9)
        << "bid multiplier " << mult;
  }
}

TEST(Vcg, VoluntaryParticipationAtTruth) {
  const SystemConfig config = paper_table1_config();
  VcgMechanism vcg;
  const auto outcome = vcg.run(config, BidProfile::truthful(config));
  for (const auto& agent : outcome.agents) {
    EXPECT_GE(agent.utility, -1e-9);
  }
}

TEST(Vcg, PaymentDecompositionIsConsistent) {
  const SystemConfig config({1.0, 3.0}, 4.0);
  VcgMechanism vcg;
  const auto outcome =
      vcg.run(config, BidProfile::deviate(config, 0, 2.0, 2.0));
  for (const auto& agent : outcome.agents) {
    EXPECT_NEAR(agent.payment, agent.compensation + agent.bonus, 1e-10);
  }
}

TEST(Vcg, DoesNotClaimVerification) {
  VcgMechanism vcg;
  EXPECT_FALSE(vcg.uses_verification());
  EXPECT_EQ(vcg.name(), "vcg");
}

TEST(Vcg, SlackerPaymentCoincidesWithVerifiedMechanism) {
  // Structural identity (documented in EXPERIMENTS.md): for a *unilateral*
  // deviation the verified mechanism's payment to the deviator reduces to
  // the Clarke payment, so VCG and comp-bonus pay the slacker the same.
  const SystemConfig config({1.0, 2.0, 5.0}, 10.0);
  VcgMechanism vcg;
  CompBonusMechanism verified;
  const BidProfile slack = BidProfile::deviate(config, 0, 1.0, 2.5);
  const auto unverified_outcome = vcg.run(config, slack);
  const auto verified_outcome = verified.run(config, slack);
  EXPECT_NEAR(unverified_outcome.agents[0].payment,
              verified_outcome.agents[0].payment, 1e-9);
}

TEST(Vcg, IgnoresSlackInOtherAgentsPaymentsUnlikeVerified) {
  // Where the mechanisms genuinely differ: when agent 0 slacks, VCG keeps
  // paying the bystanders their bid-predicted bonus while the verified
  // mechanism re-anchors their bonuses to the measured latency.
  const SystemConfig config({1.0, 2.0, 5.0}, 10.0);
  VcgMechanism vcg;
  CompBonusMechanism verified;
  const BidProfile honest = BidProfile::truthful(config);
  const BidProfile slack = BidProfile::deviate(config, 0, 1.0, 2.5);
  const auto vcg_honest = vcg.run(config, honest);
  const auto vcg_slack = vcg.run(config, slack);
  const auto verified_slack = verified.run(config, slack);
  for (std::size_t j = 1; j < config.size(); ++j) {
    EXPECT_NEAR(vcg_slack.agents[j].payment, vcg_honest.agents[j].payment,
                1e-9);
    EXPECT_LT(verified_slack.agents[j].payment,
              vcg_slack.agents[j].payment);
  }
}

}  // namespace

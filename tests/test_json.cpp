// Unit tests for the JSON reader/writer.

#include <gtest/gtest.h>

#include <string>

#include "lbmv/util/json.h"

namespace {

using lbmv::util::JsonError;
using lbmv::util::JsonValue;

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(JsonValue::parse("null").is_null());
  EXPECT_EQ(JsonValue::parse("true").as_bool(), true);
  EXPECT_EQ(JsonValue::parse("false").as_bool(), false);
  EXPECT_DOUBLE_EQ(JsonValue::parse("42").as_number(), 42.0);
  EXPECT_DOUBLE_EQ(JsonValue::parse("-3.5e2").as_number(), -350.0);
  EXPECT_EQ(JsonValue::parse("\"hi\"").as_string(), "hi");
}

TEST(Json, ParsesNestedStructures) {
  const auto doc = JsonValue::parse(R"({
    "true_values": [1.0, 2, 5, 10],
    "arrival_rate": 20,
    "deviations": [{"agent": 0, "bid_mult": 3.0}],
    "note": "reconstructed"
  })");
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.at("true_values").as_array().size(), 4u);
  EXPECT_DOUBLE_EQ(doc.at("true_values").at(1).as_number(), 2.0);
  EXPECT_DOUBLE_EQ(doc.at("arrival_rate").as_number(), 20.0);
  EXPECT_DOUBLE_EQ(doc.at("deviations").at(0).at("agent").as_number(), 0.0);
  EXPECT_EQ(doc.at("note").as_string(), "reconstructed");
}

TEST(Json, StringEscapes) {
  const auto v = JsonValue::parse(R"("a\"b\\c\nd\tA")");
  EXPECT_EQ(v.as_string(), "a\"b\\c\nd\tA");
  // Non-ASCII \u escapes become UTF-8.
  EXPECT_EQ(JsonValue::parse(R"("é")").as_string(), "\xc3\xa9");
  EXPECT_EQ(JsonValue::parse(R"("€")").as_string(), "\xe2\x82\xac");
}

TEST(Json, RejectsMalformedInput) {
  for (const char* bad :
       {"", "{", "[1,", "[1 2]", "{\"a\":}", "tru", "01x", "\"unterminated",
        "[1] garbage", "{\"a\" 1}", "\"bad \\q escape\"", "nan",
        "\"\\ud800\""}) {
    EXPECT_THROW((void)JsonValue::parse(bad), JsonError) << bad;
  }
}

TEST(Json, ErrorsCarryPosition) {
  try {
    (void)JsonValue::parse("{\n  \"a\": [1, }\n}");
    FAIL() << "expected JsonError";
  } catch (const JsonError& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("line 2"), std::string::npos) << message;
  }
}

TEST(Json, TypeMismatchesThrow) {
  const auto v = JsonValue::parse("[1, 2]");
  EXPECT_THROW((void)v.as_object(), JsonError);
  EXPECT_THROW((void)v.as_number(), JsonError);
  EXPECT_THROW((void)v.at("key"), JsonError);
  EXPECT_THROW((void)v.at(5), JsonError);
  EXPECT_FALSE(v.contains("key"));
}

TEST(Json, NumberOrFallback) {
  const auto v = JsonValue::parse(R"({"x": 2.5})");
  EXPECT_DOUBLE_EQ(v.number_or("x", 0.0), 2.5);
  EXPECT_DOUBLE_EQ(v.number_or("missing", 7.0), 7.0);
}

TEST(Json, DumpCompactRoundTrips) {
  const char* docs[] = {
      "null",
      "[1,2.5,\"x\",true,null]",
      R"({"a":[{"b":1},{}],"c":"d\ne"})",
      "[]",
      "{}",
  };
  for (const char* doc : docs) {
    const auto parsed = JsonValue::parse(doc);
    const auto reparsed = JsonValue::parse(parsed.dump());
    EXPECT_TRUE(parsed == reparsed) << doc;
  }
}

TEST(Json, DumpPrettyIsIndentedAndReparses) {
  const auto v = JsonValue::parse(R"({"a": [1, 2], "b": {"c": true}})");
  const std::string pretty = v.dump(2);
  EXPECT_NE(pretty.find("\n  \"a\": ["), std::string::npos) << pretty;
  EXPECT_TRUE(JsonValue::parse(pretty) == v);
}

TEST(Json, NumbersDumpLosslessly) {
  for (double d : {0.1, 1.0 / 3.0, 78.43137254901961, -1e-9, 12345.0}) {
    const JsonValue v(d);
    EXPECT_DOUBLE_EQ(JsonValue::parse(v.dump()).as_number(), d);
  }
  // Integral doubles print as integers.
  EXPECT_EQ(JsonValue(20.0).dump(), "20");
}

TEST(Json, ValueConstructionAndEquality) {
  JsonValue::Object object;
  object["k"] = JsonValue(1.0);
  const JsonValue a(object);
  const JsonValue b = JsonValue::parse(R"({"k": 1})");
  EXPECT_TRUE(a == b);
  EXPECT_EQ(a.type(), JsonValue::Type::kObject);
  EXPECT_EQ(JsonValue("s").type(), JsonValue::Type::kString);
  EXPECT_EQ(JsonValue(3).type(), JsonValue::Type::kNumber);
}

TEST(Json, DeepNestingGuard) {
  std::string deep(1000, '[');
  deep += std::string(1000, ']');
  EXPECT_THROW((void)JsonValue::parse(deep), JsonError);
}

}  // namespace

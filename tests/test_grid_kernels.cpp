// Differential suite for the lane-parallel deviation-grid kernels
// (core/grid_kernels.h, strategy::GridEvaluator, DESIGN.md §13).  The
// vectorized sweeps must agree with the scalar DeviationEvaluator oracle to
// 1e-9 (relative) — and, being a lane-exact replication of the same IEEE
// expressions, bit for bit — across all five closed-form payment rules,
// boundary bids at both edges of the search interval, every partial-block
// remainder (grid sizes 1..9), AND-accumulated validity-mask semantics, and
// first-index argmax tie-breaking.  Pool fan-out and best-response
// trajectories must be bit-identical at 1, 2 and 8 threads.  The whole file
// runs under both LBMV_SIMD=ON and =OFF CI legs.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "lbmv/core/archer_tardos.h"
#include "lbmv/core/comp_bonus.h"
#include "lbmv/core/grid_kernels.h"
#include "lbmv/core/mechanism.h"
#include "lbmv/core/no_payment.h"
#include "lbmv/core/profile_context.h"
#include "lbmv/core/vcg.h"
#include "lbmv/model/bids.h"
#include "lbmv/model/system_config.h"
#include "lbmv/strategy/best_response.h"
#include "lbmv/strategy/deviation.h"
#include "lbmv/strategy/grid.h"
#include "lbmv/strategy/grid_eval.h"
#include "lbmv/strategy/learning.h"
#include "lbmv/strategy/strategy.h"
#include "lbmv/strategy/tournament.h"
#include "lbmv/util/error.h"
#include "lbmv/util/rng.h"
#include "lbmv/util/thread_pool.h"

namespace {

using lbmv::core::ArcherTardosMechanism;
using lbmv::core::CompBonusMechanism;
using lbmv::core::CompensationBasis;
using lbmv::core::GridBest;
using lbmv::core::LinearPrProfileContext;
using lbmv::core::Mechanism;
using lbmv::core::NoPaymentMechanism;
using lbmv::core::VcgMechanism;
using lbmv::model::BidProfile;
using lbmv::model::SystemConfig;
using lbmv::strategy::DeviationEvaluator;
using lbmv::strategy::GridEvaluator;
using lbmv::strategy::GridSpacing;
using lbmv::strategy::make_bid_grid;
using lbmv::strategy::make_bid_grid_into;
using lbmv::util::PreconditionError;

constexpr int kMechanismKinds = 5;

/// All five closed-form payment rules, index-addressable.
std::unique_ptr<Mechanism> make_mechanism(int kind) {
  switch (kind) {
    case 0:
      return std::make_unique<CompBonusMechanism>();
    case 1:
      return std::make_unique<CompBonusMechanism>(
          lbmv::core::default_allocator(), CompensationBasis::kBid);
    case 2:
      return std::make_unique<VcgMechanism>();
    case 3:
      return std::make_unique<ArcherTardosMechanism>();
    default:
      return std::make_unique<NoPaymentMechanism>();
  }
}

std::vector<double> log_uniform_types(std::size_t n, std::uint64_t seed) {
  lbmv::util::Rng rng(seed);
  std::vector<double> t(n);
  for (double& ti : t) {
    ti = std::exp(rng.uniform(std::log(0.2), std::log(20.0)));
  }
  return t;
}

BidProfile random_profile(const SystemConfig& config, lbmv::util::Rng& rng) {
  BidProfile profile = BidProfile::truthful(config);
  for (std::size_t i = 0; i < config.size(); ++i) {
    profile.bids[i] *= std::exp(rng.uniform(std::log(0.5), std::log(2.0)));
    profile.executions[i] *= rng.uniform(1.0, 2.5);
  }
  return profile;
}

const LinearPrProfileContext* linear_context(
    const DeviationEvaluator& evaluator) {
  return dynamic_cast<const LinearPrProfileContext*>(
      evaluator.profile_context());
}

void expect_rel_near(double actual, double expected, double rel_tol,
                     const char* what) {
  const double scale = std::max(1.0, std::fabs(expected));
  EXPECT_NEAR(actual, expected, rel_tol * scale) << what;
}

class GridKernelDifferential : public ::testing::TestWithParam<int> {};

// Vectorized utilities == scalar DeviationEvaluator, bitwise, on random
// profiles/grids of every remainder size 1..9 — and within 1e-9 of the
// naive full-mechanism oracle.
TEST_P(GridKernelDifferential, MatchesScalarOracleAcrossGridSizes) {
  const auto mechanism = make_mechanism(GetParam());
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    lbmv::util::Rng rng(seed * 977);
    const auto n = static_cast<std::size_t>(rng.uniform_int(2, 12));
    const SystemConfig config(log_uniform_types(n, seed),
                              rng.uniform(2.0, 50.0));
    const BidProfile profile = random_profile(config, rng);
    const DeviationEvaluator fast(*mechanism, config, profile);
    const DeviationEvaluator naive(*mechanism, config, profile,
                                   DeviationEvaluator::Mode::kNaive);
    const auto* ctx = linear_context(fast);
    ASSERT_NE(ctx, nullptr) << mechanism->name();

    for (std::size_t size = 1; size <= 9; ++size) {
      const auto i = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
      const double t = config.true_value(i);
      const double exec = t * rng.uniform(1.0, 3.0);
      std::vector<double> bids(size);
      for (double& b : bids) {
        b = t * std::exp(rng.uniform(std::log(0.05), std::log(20.0)));
      }
      std::vector<double> out(size);
      lbmv::core::linear_pr_grid_utilities(*ctx, i, bids, exec, out);
      for (std::size_t k = 0; k < size; ++k) {
        // Bit-exact against the scalar closed form...
        EXPECT_EQ(out[k], fast.utility(i, bids[k], exec))
            << mechanism->name() << " size=" << size << " k=" << k;
        // ...and 1e-9-close to the naive full-mechanism run.
        expect_rel_near(out[k], naive.utility(i, bids[k], exec), 1e-9,
                        mechanism->name().c_str());
      }
    }
  }
}

// Boundary candidates at both edges of the sweep interval: bids far below
// and far above every other agent's, mixed into one grid.
TEST_P(GridKernelDifferential, BoundaryBidsMatchScalar) {
  const auto mechanism = make_mechanism(GetParam());
  const SystemConfig config(log_uniform_types(6, 11), 25.0);
  const DeviationEvaluator evaluator(*mechanism, config);
  const auto* ctx = linear_context(evaluator);
  ASSERT_NE(ctx, nullptr);

  for (std::size_t i = 0; i < config.size(); ++i) {
    const double t = config.true_value(i);
    const std::vector<double> bids = {1e-9 * t, 1e-4 * t, 0.05 * t, t,
                                      20.0 * t, 1e4 * t,  1e9 * t};
    std::vector<double> out(bids.size());
    lbmv::core::linear_pr_grid_utilities(*ctx, i, bids, t, out);
    for (std::size_t k = 0; k < bids.size(); ++k) {
      EXPECT_EQ(out[k], evaluator.utility(i, bids[k], t))
          << mechanism->name() << " agent=" << i << " k=" << k;
    }
  }
}

// The block argmax must reproduce a strictly-greater first-wins scalar scan
// — including on grids engineered to contain exact ties within and across
// 4-lane blocks.
TEST_P(GridKernelDifferential, ArgmaxMatchesFirstWinsScan) {
  const auto mechanism = make_mechanism(GetParam());
  lbmv::util::Rng rng(4242);
  const SystemConfig config(log_uniform_types(5, 3), 30.0);
  const DeviationEvaluator evaluator(*mechanism, config);
  const auto* ctx = linear_context(evaluator);
  ASSERT_NE(ctx, nullptr);

  for (int trial = 0; trial < 16; ++trial) {
    const auto i = static_cast<std::size_t>(rng.uniform_int(0, 4));
    const double t = config.true_value(i);
    const double exec = t * rng.uniform(1.0, 2.0);
    const auto size = static_cast<std::size_t>(rng.uniform_int(1, 40));
    std::vector<double> bids(size);
    for (double& b : bids) {
      b = t * std::exp(rng.uniform(std::log(0.05), std::log(20.0)));
    }
    // Duplicate some candidates to force exact utility ties at distinct
    // indices (including across block boundaries).
    for (std::size_t k = 1; k < size; k += 3) {
      bids[k] = bids[rng.uniform_int(0, 1) != 0 ? 0 : k - 1];
    }

    const GridBest best = lbmv::core::linear_pr_grid_best(*ctx, i, bids, exec);
    std::size_t want_idx = 0;
    double want_u = evaluator.utility(i, bids[0], exec);
    for (std::size_t k = 1; k < size; ++k) {
      const double u = evaluator.utility(i, bids[k], exec);
      if (u > want_u) {
        want_u = u;
        want_idx = k;
      }
    }
    EXPECT_EQ(best.index, want_idx) << mechanism->name() << " size=" << size;
    EXPECT_EQ(best.utility, want_u) << mechanism->name();
  }
}

INSTANTIATE_TEST_SUITE_P(AllMechanisms, GridKernelDifferential,
                         ::testing::Range(0, kMechanismKinds));

// Non-positive / non-finite candidates trip the AND-accumulated validity
// mask and surface as the canonical typed PreconditionError; valid grids of
// the same shape sail through.
TEST(GridKernels, MaskSemanticsRejectInvalidCandidates) {
  const CompBonusMechanism mechanism;
  const SystemConfig config(log_uniform_types(4, 7), 20.0);
  const DeviationEvaluator evaluator(mechanism, config);
  const auto* ctx = linear_context(evaluator);
  ASSERT_NE(ctx, nullptr);

  const double inf = std::numeric_limits<double>::infinity();
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const std::vector<std::vector<double>> bad = {
      {1.0, 2.0, 0.0, 3.0},        // zero inside a full block
      {1.0, 2.0, 3.0, 4.0, -1.0},  // negative in the padded tail
      {inf, 1.0},                  // +inf
      {1.0, nan, 2.0},             // NaN fails both ordered compares
  };
  std::vector<double> out(8);
  for (const auto& bids : bad) {
    EXPECT_THROW(lbmv::core::linear_pr_grid_utilities(*ctx, 0, bids, 1.0,
                                                      out),
                 PreconditionError);
    EXPECT_THROW((void)lbmv::core::linear_pr_grid_best(*ctx, 0, bids, 1.0),
                 PreconditionError);
  }
  const std::vector<double> two = {1.0, 2.0};
  EXPECT_THROW((void)lbmv::core::linear_pr_grid_best(*ctx, 0, two, 0.0),
               PreconditionError);
  EXPECT_THROW((void)lbmv::core::linear_pr_grid_best(*ctx, 9, two, 1.0),
               PreconditionError);

  const std::vector<double> good = {0.5, 1.0, 2.0, 4.0, 8.0};
  EXPECT_NO_THROW(
      lbmv::core::linear_pr_grid_utilities(*ctx, 0, good, 1.0, out));
}

TEST(GridKernels, LanesPaddedCountsTailLanes) {
  using lbmv::core::grid_lanes_padded;
  EXPECT_EQ(grid_lanes_padded(1), 3u);
  EXPECT_EQ(grid_lanes_padded(2), 2u);
  EXPECT_EQ(grid_lanes_padded(3), 1u);
  EXPECT_EQ(grid_lanes_padded(4), 0u);
  EXPECT_EQ(grid_lanes_padded(5), 3u);
  EXPECT_EQ(grid_lanes_padded(7), 1u);
  EXPECT_EQ(grid_lanes_padded(8), 0u);
  EXPECT_EQ(grid_lanes_padded(1000), 0u);
}

TEST(MakeBidGrid, LinearAndLogSpacingMatchLegacyExpressions) {
  const std::vector<double> lin = make_bid_grid(2.0, 10.0, 5);
  ASSERT_EQ(lin.size(), 5u);
  const double step = (10.0 - 2.0) / 4.0;
  for (std::size_t k = 0; k < 5; ++k) {
    EXPECT_EQ(lin[k], 2.0 + step * static_cast<double>(k));
  }

  const std::vector<double> log =
      make_bid_grid(0.5, 8.0, 7, GridSpacing::kLog);
  ASSERT_EQ(log.size(), 7u);
  const double log_lo = std::log(0.5);
  const double log_hi = std::log(8.0);
  for (std::size_t k = 0; k < 7; ++k) {
    const double frac = static_cast<double>(k) / 6.0;
    EXPECT_EQ(log[k], std::exp(log_lo + frac * (log_hi - log_lo)));
  }

  // Reuse without reallocation.
  std::vector<double> buf;
  make_bid_grid_into(1.0, 2.0, 3, GridSpacing::kLinear, buf);
  EXPECT_EQ(buf.size(), 3u);
  make_bid_grid_into(1.0, 2.0, 2, GridSpacing::kLinear, buf);
  EXPECT_EQ(buf.size(), 2u);
}

TEST(MakeBidGrid, RejectsDegenerateIntervals) {
  const double inf = std::numeric_limits<double>::infinity();
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW((void)make_bid_grid(0.0, 1.0, 4), PreconditionError);
  EXPECT_THROW((void)make_bid_grid(-1.0, 1.0, 4), PreconditionError);
  EXPECT_THROW((void)make_bid_grid(1.0, 1.0, 4), PreconditionError);
  EXPECT_THROW((void)make_bid_grid(2.0, 1.0, 4), PreconditionError);
  EXPECT_THROW((void)make_bid_grid(1.0, inf, 4), PreconditionError);
  EXPECT_THROW((void)make_bid_grid(nan, 1.0, 4), PreconditionError);
  EXPECT_THROW((void)make_bid_grid(1.0, 2.0, 1), PreconditionError);
}

// GridEvaluator: vectorized flag, scalar-fallback equivalence, and pooled
// fan-out bit-identity at 1/2/8 threads.
TEST(GridEvaluatorTest, ScalarFallbackAgreesWithVectorizedWithinTolerance) {
  const CompBonusMechanism mechanism;
  const SystemConfig config(log_uniform_types(6, 19), 22.0);
  const DeviationEvaluator fast(mechanism, config);
  const DeviationEvaluator naive(mechanism, config,
                                 DeviationEvaluator::Mode::kNaive);
  const GridEvaluator vec(fast);
  const GridEvaluator scal(naive);
  EXPECT_TRUE(vec.vectorized());
  EXPECT_FALSE(scal.vectorized());

  const double t = config.true_value(2);
  const std::vector<double> bids = make_bid_grid(0.05 * t, 20.0 * t, 37);
  std::vector<double> u_vec(bids.size());
  std::vector<double> u_scal(bids.size());
  vec.utilities_into(2, bids, t, u_vec);
  scal.utilities_into(2, bids, t, u_scal);
  for (std::size_t k = 0; k < bids.size(); ++k) {
    expect_rel_near(u_vec[k], u_scal[k], 1e-9, "grid-evaluator fallback");
  }

  const GridEvaluator::Best bv = vec.best_response(2, bids, t);
  const GridEvaluator::Best bs = scal.best_response(2, bids, t);
  EXPECT_EQ(bv.index, bs.index);
  expect_rel_near(bv.utility, bs.utility, 1e-9, "grid-evaluator best");
}

TEST(GridEvaluatorTest, PooledSweepsBitIdenticalAtAnyThreadCount) {
  const VcgMechanism mechanism;
  lbmv::util::Rng rng(99);
  const SystemConfig config(log_uniform_types(8, 23), 35.0);
  const BidProfile profile = random_profile(config, rng);
  const DeviationEvaluator evaluator(mechanism, config, profile);

  const double t = config.true_value(3);
  // > 4 fan-out blocks of 1024, with a partial tail block.
  const std::vector<double> bids = make_bid_grid(0.05 * t, 20.0 * t, 4500);

  const GridEvaluator serial(evaluator);
  const GridEvaluator::Best want = serial.best_response(3, bids, 1.5 * t);
  for (const std::size_t threads : {1u, 2u, 8u}) {
    lbmv::util::ThreadPool pool(threads);
    const GridEvaluator pooled(evaluator, &pool);
    const GridEvaluator::Best got = pooled.best_response(3, bids, 1.5 * t);
    EXPECT_EQ(got.index, want.index) << "threads=" << threads;
    EXPECT_EQ(got.utility, want.utility) << "threads=" << threads;
  }
}

TEST(GridEvaluatorTest, BestResponseDynamicsTrajectoriesBitIdentical) {
  const CompBonusMechanism mechanism;
  const SystemConfig config(log_uniform_types(6, 31), 28.0);

  lbmv::strategy::BestResponseOptions options;
  options.max_rounds = 6;
  options.bid_grid = 2500;  // multiple fan-out blocks per sweep
  const auto want =
      lbmv::strategy::best_response_dynamics(mechanism, config, options);

  for (const std::size_t threads : {1u, 2u, 8u}) {
    lbmv::util::ThreadPool pool(threads);
    lbmv::strategy::BestResponseOptions pooled = options;
    pooled.pool = &pool;
    const auto got =
        lbmv::strategy::best_response_dynamics(mechanism, config, pooled);
    ASSERT_EQ(got.bid_trajectory.size(), want.bid_trajectory.size())
        << "threads=" << threads;
    for (std::size_t r = 0; r < want.bid_trajectory.size(); ++r) {
      for (std::size_t i = 0; i < config.size(); ++i) {
        EXPECT_EQ(got.bid_trajectory[r][i], want.bid_trajectory[r][i])
            << "threads=" << threads << " round=" << r << " agent=" << i;
      }
    }
    EXPECT_EQ(got.final_actual_latency, want.final_actual_latency);
  }
}

// Full-feedback learners see every arm's counterfactual each round, so a
// single learner against truthful opponents must lock onto the dominant
// truthful arm under the verified mechanism.
TEST(GridSweepClients, FullFeedbackLearningFindsTruthfulArm) {
  const CompBonusMechanism mechanism;
  const SystemConfig config(log_uniform_types(5, 47), 18.0);
  lbmv::strategy::LearningOptions options;
  options.rounds = 40;
  options.full_feedback = true;
  options.single_learner = 2;
  const auto result = lbmv::strategy::run_learning(mechanism, config, options);
  EXPECT_DOUBLE_EQ(result.final_bid_mult[2], 1.0);
  EXPECT_DOUBLE_EQ(result.final_exec_mult[2], 1.0);
  EXPECT_DOUBLE_EQ(result.truthful_fraction, 1.0);
}

// The tournament's best-response-gain probe: a truthful strategy under the
// truthful mechanism leaves (at most) grid-resolution crumbs on the table.
TEST(GridSweepClients, TournamentReportsNearZeroGainForTruthful) {
  const CompBonusMechanism mechanism;
  const lbmv::strategy::TruthfulStrategy truthful;
  lbmv::strategy::TournamentOptions options;
  options.instances = 12;
  options.agents = 5;
  options.parallel = false;
  const auto scores = lbmv::strategy::run_tournament(
      mechanism, {&truthful}, options);
  ASSERT_EQ(scores.size(), 1u);
  EXPECT_DOUBLE_EQ(scores[0].mean_regret, 0.0);
  EXPECT_LE(scores[0].mean_best_response_gain, 1e-9);

  const auto again = lbmv::strategy::run_tournament(
      mechanism, {&truthful}, options);
  EXPECT_EQ(scores[0].mean_best_response_gain,
            again[0].mean_best_response_gain);
}

}  // namespace

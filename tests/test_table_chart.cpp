// Unit tests for table, CSV and ASCII chart rendering.

#include <gtest/gtest.h>

#include <sstream>

#include "lbmv/util/ascii_chart.h"
#include "lbmv/util/csv.h"
#include "lbmv/util/error.h"
#include "lbmv/util/table.h"

namespace {

using lbmv::util::Bar;
using lbmv::util::BarGroup;
using lbmv::util::CsvWriter;
using lbmv::util::Series;
using lbmv::util::Table;

TEST(Table, RendersAlignedMarkdown) {
  Table table({"name", "value"});
  table.add_row({"short", "1.00"});
  table.add_row({"a-much-longer-name", "2.50"});
  const std::string md = table.to_markdown();
  EXPECT_NE(md.find("| name"), std::string::npos);
  EXPECT_NE(md.find("| a-much-longer-name |"), std::string::npos);
  // Header separator present.
  EXPECT_NE(md.find("|---"), std::string::npos);
  EXPECT_EQ(table.rows(), 2u);
  EXPECT_EQ(table.columns(), 2u);
}

TEST(Table, RejectsMismatchedRow) {
  Table table({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), lbmv::util::PreconditionError);
}

TEST(Table, NumberFormattingHelpers) {
  EXPECT_EQ(Table::num(78.431372, 2), "78.43");
  EXPECT_EQ(Table::num(-1.5, 1), "-1.5");
  EXPECT_EQ(Table::pct(0.17, 1), "+17.0%");
  EXPECT_EQ(Table::pct(-0.45, 0), "-45%");
}

TEST(Csv, QuotesOnlyWhenNeeded) {
  EXPECT_EQ(CsvWriter::quote("plain"), "plain");
  EXPECT_EQ(CsvWriter::quote("with,comma"), "\"with,comma\"");
  EXPECT_EQ(CsvWriter::quote("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(Csv, WritesRows) {
  std::ostringstream os;
  CsvWriter csv(os);
  csv.write_row({"a", "b,c"});
  csv.write_numeric_row({1.5, -2.0});
  EXPECT_EQ(os.str(), "a,\"b,c\"\n1.5,-2\n");
}

TEST(BarChart, PositiveOnlyBarsScaleToWidth) {
  const std::string chart =
      lbmv::util::bar_chart("title", {{"a", 10.0}, {"b", 5.0}}, 20);
  EXPECT_NE(chart.find("title"), std::string::npos);
  EXPECT_NE(chart.find("####################"), std::string::npos);  // a
  EXPECT_NE(chart.find("##########"), std::string::npos);            // b
  EXPECT_NE(chart.find("10.00"), std::string::npos);
}

TEST(BarChart, NegativeValuesRenderLeftOfAxis) {
  const std::string chart =
      lbmv::util::bar_chart("", {{"pos", 4.0}, {"neg", -4.0}}, 20);
  EXPECT_NE(chart.find('<'), std::string::npos);
  EXPECT_NE(chart.find('#'), std::string::npos);
}

TEST(BarChart, AllZeroValuesDoNotDivideByZero) {
  const std::string chart = lbmv::util::bar_chart("", {{"z", 0.0}}, 20);
  EXPECT_NE(chart.find("0.00"), std::string::npos);
}

TEST(GroupedBarChart, RendersLegendAndGroups) {
  const std::string chart = lbmv::util::grouped_bar_chart(
      "t", {"payment", "utility"},
      {{"C1", {3.0, 1.0}}, {"C2", {2.0, -0.5}}}, 30);
  EXPECT_NE(chart.find("legend:"), std::string::npos);
  EXPECT_NE(chart.find("payment"), std::string::npos);
  EXPECT_NE(chart.find("C2"), std::string::npos);
}

TEST(GroupedBarChart, RejectsWidthMismatch) {
  EXPECT_THROW((void)lbmv::util::grouped_bar_chart(
                   "", {"one"}, {{"g", {1.0, 2.0}}}, 30),
               lbmv::util::PreconditionError);
}

TEST(LineChart, PlotsSeriesWithinBounds) {
  Series s{"f", {0.0, 1.0, 2.0, 3.0}, {0.0, 1.0, 4.0, 9.0}};
  const std::string chart = lbmv::util::line_chart("quad", {s}, 40, 10);
  EXPECT_NE(chart.find("quad"), std::string::npos);
  EXPECT_NE(chart.find("y_max = 9.00"), std::string::npos);
  EXPECT_NE(chart.find("[*] f"), std::string::npos);
}

TEST(LineChart, RejectsUnequalSeriesLengths) {
  Series s{"bad", {0.0, 1.0}, {0.0}};
  EXPECT_THROW((void)lbmv::util::line_chart("", {s}),
               lbmv::util::PreconditionError);
}

TEST(LineChart, ConstantSeriesDoesNotCrash) {
  Series s{"c", {0.0, 1.0}, {5.0, 5.0}};
  const std::string chart = lbmv::util::line_chart("", {s});
  EXPECT_FALSE(chart.empty());
}

}  // namespace

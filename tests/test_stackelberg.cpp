// Tests for Stackelberg scheduling on parallel links.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "lbmv/core/comp_bonus.h"
#include "lbmv/core/no_payment.h"
#include "lbmv/game/stackelberg.h"
#include "lbmv/model/latency.h"
#include "lbmv/model/system_config.h"
#include "lbmv/util/error.h"

namespace {

using namespace lbmv::model;
using lbmv::game::stackelberg;
using lbmv::game::StackelbergStrategy;

std::vector<std::unique_ptr<LatencyFunction>> pigou_links() {
  std::vector<std::unique_ptr<LatencyFunction>> links;
  links.push_back(std::make_unique<AffineLatency>(1.0, 1e-6));
  links.push_back(std::make_unique<LinearLatency>(1.0));
  return links;
}

TEST(Stackelberg, AlphaZeroIsPlainSelfishRouting) {
  const auto links = pigou_links();
  const auto report = stackelberg(links, 1.0, 0.0);
  EXPECT_NEAR(report.total_latency, report.selfish_latency, 1e-9);
  EXPECT_NEAR(report.leader_flow.total_rate(), 0.0, 1e-12);
}

TEST(Stackelberg, AlphaOneImplementsTheOptimum) {
  const auto links = pigou_links();
  for (const auto strategy : {StackelbergStrategy::kScale,
                              StackelbergStrategy::kLargestLatencyFirst}) {
    const auto report = stackelberg(links, 1.0, 1.0, strategy);
    EXPECT_NEAR(report.total_latency, report.optimal_latency, 1e-6);
    EXPECT_NEAR(report.follower_flow.total_rate(), 0.0, 1e-9);
  }
}

TEST(Stackelberg, LlfImprovesOnSelfishRoutingOnPigou) {
  const auto links = pigou_links();
  double previous = stackelberg(links, 1.0, 0.0).total_latency;
  for (double alpha : {0.25, 0.5, 0.75, 1.0}) {
    const auto report = stackelberg(
        links, 1.0, alpha, StackelbergStrategy::kLargestLatencyFirst);
    EXPECT_LE(report.total_latency, previous + 1e-9) << "alpha " << alpha;
    previous = report.total_latency;
  }
  // At alpha = 0.5 LLF puts the leader's share on the constant link (the
  // one the optimum loads with latency 1) and the followers split the rest.
  const auto half = stackelberg(links, 1.0, 0.5,
                                StackelbergStrategy::kLargestLatencyFirst);
  EXPECT_GT(half.leader_flow[0], 0.49);
  EXPECT_LT(half.inefficiency(),
            stackelberg(links, 1.0, 0.0).inefficiency());
}

TEST(Stackelberg, CombinedFlowIsFeasibleAndFollowersEquilibrate) {
  std::vector<std::unique_ptr<LatencyFunction>> links;
  links.push_back(std::make_unique<AffineLatency>(2.0, 0.5));
  links.push_back(std::make_unique<AffineLatency>(0.5, 1.0));
  links.push_back(std::make_unique<LinearLatency>(2.0));
  const double demand = 5.0;
  const auto report = stackelberg(links, demand, 0.4);
  EXPECT_TRUE(report.combined_flow.is_feasible(demand, 1e-8));
  EXPECT_NEAR(report.leader_flow.total_rate(), 2.0, 1e-9);
  EXPECT_NEAR(report.follower_flow.total_rate(), 3.0, 1e-9);
  // Sandwich: optimum <= Stackelberg <= selfish.
  EXPECT_GE(report.total_latency, report.optimal_latency - 1e-9);
  EXPECT_LE(report.total_latency, report.selfish_latency + 1e-9);
}

TEST(Stackelberg, LinearLinksAreAlreadyOptimalForAnyAlpha) {
  std::vector<std::unique_ptr<LatencyFunction>> links;
  links.push_back(std::make_unique<LinearLatency>(1.0));
  links.push_back(std::make_unique<LinearLatency>(3.0));
  for (double alpha : {0.0, 0.3, 0.8}) {
    const auto report = stackelberg(links, 4.0, alpha);
    EXPECT_NEAR(report.inefficiency(), 1.0, 1e-7) << "alpha " << alpha;
  }
}

TEST(Stackelberg, ValidatesArguments) {
  const auto links = pigou_links();
  EXPECT_THROW((void)stackelberg(links, 1.0, -0.1),
               lbmv::util::PreconditionError);
  EXPECT_THROW((void)stackelberg(links, 1.0, 1.5),
               lbmv::util::PreconditionError);
  EXPECT_THROW((void)stackelberg(links, 0.0, 0.5),
               lbmv::util::PreconditionError);
  std::vector<std::unique_ptr<LatencyFunction>> none;
  EXPECT_THROW((void)stackelberg(none, 1.0, 0.5),
               lbmv::util::PreconditionError);
}

// ---- mechanism-layer bidding game -----------------------------------------

lbmv::game::BidLeaderOptions quick_bidding_options() {
  lbmv::game::BidLeaderOptions options;
  options.bid_grid = 9;
  options.follower.max_rounds = 8;
  options.follower.bid_grid = 48;
  options.follower.exec_multipliers = {1.0, 1.5, 2.0};
  return options;
}

TEST(StackelbergBidding, CommitmentInflatesTransfersButNotLatency) {
  // Scope boundary: dominant-strategy truthfulness covers *simultaneous*
  // play, not commitment.  An inflated commitment (bid above the
  // capacity the leader still executes at) drags the followers' best
  // responses up in proportion — their interior optimum is
  // t_j * S_rest / W_rest, and an inconsistent leader makes
  // W_rest < S_rest.  The PR allocation is invariant to that common
  // scaling, so the equilibrium latency stays at the optimum; the
  // first-mover advantage shows up purely as inflated transfers.
  const lbmv::model::SystemConfig config({1.0, 2.0, 5.0}, 10.0);
  const lbmv::core::CompBonusMechanism mechanism;
  const auto report = lbmv::game::stackelberg_bidding(mechanism, config,
                                                      quick_bidding_options());
  EXPECT_GT(report.leader_candidates, 0);
  EXPECT_GT(report.commitment_gain, 0.0);
  EXPECT_GT(report.leader_bid, config.true_value(0));
  // The allocation itself is immune: latency at the commitment
  // equilibrium matches the truthful optimum.
  EXPECT_NEAR(report.total_latency, report.optimal_latency,
              0.01 * report.optimal_latency);
  // Committing to the truth keeps everyone truthful, so that baseline
  // equals the closed-form truthful utility L_{-L} - L*.
  EXPECT_GT(report.truthful_commitment_utility, 0.0);
}

TEST(StackelbergBidding, CommitmentPaysWithoutPayments) {
  // Under the no-payment baseline the leader gains by committing to an
  // inflated bid (dodging work), quantifying the first-mover advantage the
  // verified mechanism removes.
  const lbmv::model::SystemConfig config({1.0, 2.0, 5.0}, 10.0);
  const lbmv::core::NoPaymentMechanism mechanism;
  lbmv::game::BidLeaderOptions options = quick_bidding_options();
  options.follower.optimize_execution = false;
  const auto report =
      lbmv::game::stackelberg_bidding(mechanism, config, options);
  EXPECT_GT(report.commitment_gain, 0.0);
  EXPECT_GT(report.leader_bid, config.true_value(0));
  // The equilibrium with lying is worse for the system than the optimum.
  EXPECT_GT(report.total_latency, report.optimal_latency);
}

TEST(StackelbergBidding, ValidatesOptions) {
  const lbmv::model::SystemConfig config({1.0, 2.0}, 4.0);
  const lbmv::core::CompBonusMechanism mechanism;
  lbmv::game::BidLeaderOptions bad = quick_bidding_options();
  bad.leader = 5;
  EXPECT_THROW((void)lbmv::game::stackelberg_bidding(mechanism, config, bad),
               lbmv::util::PreconditionError);
  bad = quick_bidding_options();
  bad.bid_grid = 1;
  EXPECT_THROW((void)lbmv::game::stackelberg_bidding(mechanism, config, bad),
               lbmv::util::PreconditionError);
  bad = quick_bidding_options();
  bad.bid_lo_mult = 2.0;
  bad.bid_hi_mult = 0.5;
  EXPECT_THROW((void)lbmv::game::stackelberg_bidding(mechanism, config, bad),
               lbmv::util::PreconditionError);
}

}  // namespace

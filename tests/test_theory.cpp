// Property tests mirroring the *structure* of the paper's proofs, checked
// numerically on fine grids over random instances.  Where the proofs argue
// "by optimality of the PR allocation, any misreport raises the realised
// latency", these tests check exactly that quantity pointwise.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "lbmv/core/comp_bonus.h"
#include "lbmv/model/bids.h"
#include "lbmv/model/system_config.h"
#include "lbmv/util/rng.h"

namespace {

using lbmv::core::CompBonusMechanism;
using lbmv::model::BidProfile;
using lbmv::model::SystemConfig;
using lbmv::util::Rng;

SystemConfig random_config(std::uint64_t seed) {
  Rng rng(seed);
  const auto n = static_cast<std::size_t>(rng.uniform_int(2, 9));
  std::vector<double> types(n);
  for (double& t : types) {
    t = std::exp(rng.uniform(std::log(0.3), std::log(12.0)));
  }
  return SystemConfig(std::move(types), rng.uniform(2.0, 50.0));
}

class TheoremGrid : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  static constexpr double kGrid[] = {0.2, 0.4, 0.6, 0.8,  0.9, 0.95, 1.0,
                                     1.05, 1.1, 1.3, 1.7, 2.5, 4.0,  8.0};
};

// Theorem 3.1 case (i), inner step: with everyone else truthful and agent i
// executing at capacity, the *realised* total latency L(x(b), t) is
// minimised over the agent's own bid at b_i = t_i — pointwise on the grid.
TEST_P(TheoremGrid, RealisedLatencyMinimisedAtTruthfulBid) {
  const SystemConfig config = random_config(GetParam());
  CompBonusMechanism mechanism;
  for (std::size_t agent = 0; agent < config.size(); ++agent) {
    const double at_truth =
        mechanism.run(config, BidProfile::truthful(config)).actual_latency;
    for (double mult : kGrid) {
      const auto outcome = mechanism.run(
          config, BidProfile::deviate(config, agent, mult, 1.0));
      EXPECT_GE(outcome.actual_latency, at_truth - 1e-9)
          << "agent " << agent << " bid x" << mult;
    }
  }
}

// Theorem 3.1 case (ii): slowing execution strictly increases the realised
// latency, monotonically in t~_i (dL/dt~_i = x_i^2 > 0).
TEST_P(TheoremGrid, RealisedLatencyIncreasesWithExecutionValue) {
  const SystemConfig config = random_config(GetParam() + 1000);
  CompBonusMechanism mechanism;
  const std::size_t agent = GetParam() % config.size();
  double previous = -1.0;
  for (double exec_mult : {1.0, 1.2, 1.5, 2.0, 3.0, 5.0}) {
    const auto outcome = mechanism.run(
        config, BidProfile::deviate(config, agent, 1.0, exec_mult));
    EXPECT_GT(outcome.actual_latency, previous);
    previous = outcome.actual_latency;
  }
}

// The allocation-rule monotonicity that one-parameter truthfulness needs
// (Archer–Tardos): the agent's own load is strictly decreasing in its bid,
// and everyone else's load is strictly increasing in it.
TEST_P(TheoremGrid, AllocationMonotoneInOwnBid) {
  const SystemConfig config = random_config(GetParam() + 2000);
  CompBonusMechanism mechanism;
  const std::size_t agent = GetParam() % config.size();
  double previous_own = std::numeric_limits<double>::infinity();
  double previous_other = -1.0;
  const std::size_t other = (agent + 1) % config.size();
  for (double mult : kGrid) {
    const auto outcome = mechanism.run(
        config, BidProfile::deviate(config, agent, mult, 1.0));
    EXPECT_LT(outcome.allocation[agent], previous_own);
    EXPECT_GT(outcome.allocation[other], previous_other);
    previous_own = outcome.allocation[agent];
    previous_other = outcome.allocation[other];
  }
}

// Unilateral-payment identity (EXPERIMENTS.md): the deviator's payment is
// independent of its own execution value — the verified compensation rise
// cancels the bonus drop exactly.
TEST_P(TheoremGrid, PaymentIndependentOfOwnExecution) {
  const SystemConfig config = random_config(GetParam() + 3000);
  CompBonusMechanism mechanism;
  const std::size_t agent = GetParam() % config.size();
  Rng rng(GetParam());
  const double bid_mult = rng.uniform(0.5, 2.0);
  const double base_payment =
      mechanism.run(config, BidProfile::deviate(config, agent, bid_mult, 1.0))
          .agents[agent]
          .payment;
  for (double exec_mult : {1.25, 2.0, 3.5}) {
    const auto outcome = mechanism.run(
        config, BidProfile::deviate(config, agent, bid_mult, exec_mult));
    EXPECT_NEAR(outcome.agents[agent].payment, base_payment,
                1e-9 * std::max(1.0, std::fabs(base_payment)));
  }
}

// Scale invariance: multiplying every type by c leaves the allocation
// unchanged and scales latency, payments and utilities by exactly c.
TEST_P(TheoremGrid, CommonTypeScalingActsLinearly) {
  const SystemConfig config = random_config(GetParam() + 4000);
  const double c = 3.7;
  std::vector<double> scaled_types(config.true_values().begin(),
                                   config.true_values().end());
  for (double& t : scaled_types) t *= c;
  const SystemConfig scaled(scaled_types, config.arrival_rate());

  CompBonusMechanism mechanism;
  const auto base = mechanism.run(config, BidProfile::truthful(config));
  const auto big = mechanism.run(scaled, BidProfile::truthful(scaled));
  EXPECT_NEAR(big.actual_latency, c * base.actual_latency,
              1e-9 * c * base.actual_latency);
  for (std::size_t i = 0; i < config.size(); ++i) {
    EXPECT_NEAR(big.allocation[i], base.allocation[i],
                1e-9 * std::max(1.0, base.allocation[i]));
    EXPECT_NEAR(big.agents[i].payment, c * base.agents[i].payment,
                1e-9 * std::max(1.0, std::fabs(c * base.agents[i].payment)));
    EXPECT_NEAR(big.agents[i].utility, c * base.agents[i].utility,
                1e-9 * std::max(1.0, std::fabs(c * base.agents[i].utility)));
  }
}

// Rate scaling: x is linear in R while L, payments and utilities are
// quadratic in R (paper eq. (3)/(4) and the payment definition).
TEST_P(TheoremGrid, ArrivalRateScalingIsQuadratic) {
  const SystemConfig config = random_config(GetParam() + 5000);
  const SystemConfig doubled = config.with_arrival_rate(
      2.0 * config.arrival_rate());
  CompBonusMechanism mechanism;
  const auto base = mechanism.run(config, BidProfile::truthful(config));
  const auto big = mechanism.run(doubled, BidProfile::truthful(doubled));
  EXPECT_NEAR(big.actual_latency, 4.0 * base.actual_latency,
              1e-9 * big.actual_latency);
  for (std::size_t i = 0; i < config.size(); ++i) {
    EXPECT_NEAR(big.allocation[i], 2.0 * base.allocation[i],
                1e-9 * std::max(1.0, big.allocation[i]));
    EXPECT_NEAR(big.agents[i].payment, 4.0 * base.agents[i].payment,
                1e-9 * std::max(1.0, std::fabs(big.agents[i].payment)));
  }
}

// Budget sanity: the mechanism's net outlay (total payment minus total
// verified cost) equals the sum of bonuses; at the truthful profile that is
// sum_i (L_{-i} - L*) > 0 — the mechanism runs a deficit, which is the
// price of incentive compatibility (cf. frugality analysis).
TEST_P(TheoremGrid, NetOutlayEqualsBonusSum) {
  const SystemConfig config = random_config(GetParam() + 6000);
  CompBonusMechanism mechanism;
  const auto outcome =
      mechanism.run(config, BidProfile::truthful(config));
  double bonus_sum = 0.0;
  for (const auto& agent : outcome.agents) bonus_sum += agent.bonus;
  const double net_outlay =
      outcome.total_payment() - outcome.total_valuation_magnitude();
  EXPECT_NEAR(net_outlay, bonus_sum,
              1e-9 * std::max(1.0, std::fabs(bonus_sum)));
  EXPECT_GT(bonus_sum, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TheoremGrid,
                         ::testing::Range<std::uint64_t>(1, 11));

}  // namespace

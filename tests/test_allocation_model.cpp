// Unit tests for Allocation, SystemConfig and BidProfile.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "lbmv/model/allocation.h"
#include "lbmv/model/bids.h"
#include "lbmv/model/system_config.h"
#include "lbmv/util/error.h"

namespace {

using namespace lbmv::model;

TEST(Allocation, FeasibilityChecksBothConditions) {
  Allocation ok({1.0, 2.0, 3.0});
  EXPECT_TRUE(ok.is_feasible(6.0));
  EXPECT_FALSE(ok.is_feasible(5.0));  // conservation violated
  Allocation negative({-1.0, 7.0});
  EXPECT_FALSE(negative.is_feasible(6.0));  // positivity violated
}

TEST(Allocation, TotalRateAndIndexing) {
  Allocation x({0.5, 1.5});
  EXPECT_DOUBLE_EQ(x.total_rate(), 2.0);
  EXPECT_DOUBLE_EQ(x[1], 1.5);
  EXPECT_THROW((void)x[2], lbmv::util::PreconditionError);
}

TEST(Allocation, WithoutRemovesOneEntry) {
  Allocation x({1.0, 2.0, 3.0});
  Allocation rest = x.without(1);
  ASSERT_EQ(rest.size(), 2u);
  EXPECT_DOUBLE_EQ(rest[0], 1.0);
  EXPECT_DOUBLE_EQ(rest[1], 3.0);
}

TEST(Allocation, RejectsNonFiniteRates) {
  EXPECT_THROW(
      Allocation({1.0, std::numeric_limits<double>::quiet_NaN()}),
      lbmv::util::PreconditionError);
}

TEST(TotalLatency, LinearFormulaMatchesPaperEquation2) {
  // L(x) = sum t_i x_i^2.
  Allocation x({2.0, 3.0});
  const std::vector<double> t{1.0, 0.5};
  EXPECT_DOUBLE_EQ(total_latency_linear(x, t), 1.0 * 4.0 + 0.5 * 9.0);
}

TEST(TotalLatency, GeneralFormAgreesWithLinearSpecialisation) {
  Allocation x({2.0, 3.0});
  const std::vector<double> t{1.0, 0.5};
  std::vector<std::unique_ptr<LatencyFunction>> fns;
  for (double ti : t) fns.push_back(std::make_unique<LinearLatency>(ti));
  EXPECT_DOUBLE_EQ(total_latency(x, fns), total_latency_linear(x, t));
}

TEST(TotalLatency, SkipsZeroRateComputersOutsideDomain) {
  // An M/M/1 server with zero allocated rate contributes zero cost and its
  // latency function must not be evaluated outside its domain.
  Allocation x({0.0, 1.0});
  std::vector<std::unique_ptr<LatencyFunction>> fns;
  fns.push_back(std::make_unique<MM1Latency>(0.5));  // could not serve 1.0
  fns.push_back(std::make_unique<MM1Latency>(3.0));
  EXPECT_DOUBLE_EQ(total_latency(x, fns), 1.0 / (3.0 - 1.0));
}

TEST(TotalLatency, SizeMismatchThrows) {
  Allocation x({1.0});
  const std::vector<double> t{1.0, 2.0};
  EXPECT_THROW((void)total_latency_linear(x, t),
               lbmv::util::PreconditionError);
}

TEST(SystemConfig, ValidatesInput) {
  EXPECT_THROW(SystemConfig({}, 1.0), lbmv::util::PreconditionError);
  EXPECT_THROW(SystemConfig({1.0, -2.0}, 1.0),
               lbmv::util::PreconditionError);
  EXPECT_THROW(SystemConfig({1.0}, 0.0), lbmv::util::PreconditionError);
}

TEST(SystemConfig, WithoutPreservesOrderAndRate) {
  SystemConfig config({1.0, 2.0, 5.0}, 20.0);
  SystemConfig rest = config.without(1);
  ASSERT_EQ(rest.size(), 2u);
  EXPECT_DOUBLE_EQ(rest.true_value(0), 1.0);
  EXPECT_DOUBLE_EQ(rest.true_value(1), 5.0);
  EXPECT_DOUBLE_EQ(rest.arrival_rate(), 20.0);
  SystemConfig one({1.0}, 2.0);
  EXPECT_THROW((void)one.without(0), lbmv::util::PreconditionError);
}

TEST(SystemConfig, InstantiateBuildsFamilyCurves) {
  SystemConfig config({1.0, 4.0}, 10.0);
  const std::vector<double> values{2.0, 3.0};
  const auto fns = config.instantiate(values);
  ASSERT_EQ(fns.size(), 2u);
  EXPECT_DOUBLE_EQ(fns[0]->latency(1.0), 2.0);
  EXPECT_DOUBLE_EQ(fns[1]->latency(1.0), 3.0);
  const auto true_fns = config.instantiate_true();
  EXPECT_DOUBLE_EQ(true_fns[1]->latency(1.0), 4.0);
}

TEST(SystemConfig, HeterogeneityIsMaxOverMin) {
  SystemConfig config({1.0, 2.0, 10.0}, 5.0);
  EXPECT_DOUBLE_EQ(config.heterogeneity(), 10.0);
}

TEST(SystemConfig, WithArrivalRateSharesFamily) {
  SystemConfig config({1.0, 2.0}, 5.0);
  SystemConfig scaled = config.with_arrival_rate(8.0);
  EXPECT_DOUBLE_EQ(scaled.arrival_rate(), 8.0);
  EXPECT_EQ(&scaled.family(), &config.family());
}

TEST(BidProfile, TruthfulMirrorsTrueValues) {
  SystemConfig config({1.0, 2.0}, 5.0);
  const BidProfile profile = BidProfile::truthful(config);
  EXPECT_EQ(profile.bids, (std::vector<double>{1.0, 2.0}));
  EXPECT_EQ(profile.executions, (std::vector<double>{1.0, 2.0}));
  EXPECT_TRUE(profile.executions_respect_capacity(config));
}

TEST(BidProfile, DeviateOnlyTouchesOneAgent) {
  SystemConfig config({1.0, 2.0, 5.0}, 5.0);
  const BidProfile profile = BidProfile::deviate(config, 1, 3.0, 2.0);
  EXPECT_DOUBLE_EQ(profile.bids[0], 1.0);
  EXPECT_DOUBLE_EQ(profile.bids[1], 6.0);
  EXPECT_DOUBLE_EQ(profile.executions[1], 4.0);
  EXPECT_DOUBLE_EQ(profile.bids[2], 5.0);
}

TEST(BidProfile, WithoutDropsTheAgent) {
  SystemConfig config({1.0, 2.0, 5.0}, 5.0);
  const BidProfile profile = BidProfile::deviate(config, 0, 2.0, 1.0);
  const BidProfile rest = profile.without(0);
  EXPECT_EQ(rest.bids, (std::vector<double>{2.0, 5.0}));
  EXPECT_EQ(rest.executions, (std::vector<double>{2.0, 5.0}));
}

TEST(BidProfile, ValidateCatchesBadShapesAndValues) {
  BidProfile profile;
  profile.bids = {1.0, 2.0};
  profile.executions = {1.0};
  EXPECT_THROW(profile.validate(2), lbmv::util::PreconditionError);
  profile.executions = {1.0, -2.0};
  EXPECT_THROW(profile.validate(2), lbmv::util::PreconditionError);
}

TEST(BidProfile, CapacityCheckFlagsExecutionBelowTruth) {
  SystemConfig config({2.0, 2.0}, 5.0);
  BidProfile profile = BidProfile::truthful(config);
  profile.executions[0] = 1.0;  // pretends to run faster than possible
  EXPECT_FALSE(profile.executions_respect_capacity(config));
}

}  // namespace

// Tests for the Archer–Tardos one-parameter baseline, certifying the
// closed-form payment integral against numeric quadrature.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "lbmv/analysis/paper_config.h"
#include "lbmv/core/archer_tardos.h"
#include "lbmv/model/bids.h"
#include "lbmv/util/error.h"

namespace {

using lbmv::core::archer_tardos_tail_integral;
using lbmv::core::ArcherTardosMechanism;
using lbmv::model::BidProfile;
using lbmv::model::SystemConfig;

TEST(ArcherTardos, ClosedFormMatchesNumericIntegral) {
  for (double bid : {0.3, 1.0, 2.7}) {
    for (double s : {0.5, 4.1, 9.0}) {
      for (double rate : {5.0, 20.0}) {
        EXPECT_NEAR(archer_tardos_tail_integral(bid, s, rate),
                    ArcherTardosMechanism::tail_integral_numeric(bid, s, rate),
                    1e-6)
            << "bid=" << bid << " s=" << s << " R=" << rate;
      }
    }
  }
}

TEST(ArcherTardos, TailIntegralRejectsBadInput) {
  EXPECT_THROW((void)archer_tardos_tail_integral(0.0, 1.0, 1.0),
               lbmv::util::PreconditionError);
  EXPECT_THROW((void)archer_tardos_tail_integral(1.0, 0.0, 1.0),
               lbmv::util::PreconditionError);
  EXPECT_THROW((void)archer_tardos_tail_integral(1.0, 1.0, -1.0),
               lbmv::util::PreconditionError);
}

TEST(ArcherTardos, WorkCurveIsMonotoneDecreasingInOwnBid) {
  // The Archer–Tardos characterisation requires w_i non-increasing in the
  // agent's bid; under PR, w_i = x_i^2 = (R / (1 + b s))^2.
  const SystemConfig config({1.0, 2.0, 5.0}, 10.0);
  ArcherTardosMechanism mechanism;
  double prev_work = std::numeric_limits<double>::infinity();
  for (double mult : {0.25, 0.5, 1.0, 2.0, 4.0}) {
    const auto outcome =
        mechanism.run(config, BidProfile::deviate(config, 0, mult, 1.0));
    const double work =
        outcome.agents[0].allocation * outcome.agents[0].allocation;
    EXPECT_LT(work, prev_work);
    prev_work = work;
  }
}

TEST(ArcherTardos, TruthfulBiddingIsDominantOnAGrid) {
  const SystemConfig config({1.0, 2.0, 5.0, 10.0}, 20.0);
  ArcherTardosMechanism mechanism;
  for (std::size_t agent = 0; agent < config.size(); ++agent) {
    const double truthful_u =
        mechanism.run(config, BidProfile::truthful(config))
            .agents[agent]
            .utility;
    for (double mult : {0.1, 0.5, 0.9, 1.1, 2.0, 8.0}) {
      const auto outcome = mechanism.run(
          config, BidProfile::deviate(config, agent, mult, 1.0));
      EXPECT_LE(outcome.agents[agent].utility, truthful_u + 1e-9)
          << "agent " << agent << " multiplier " << mult;
    }
  }
}

TEST(ArcherTardos, TruthfulUtilityEqualsTailIntegral) {
  // U_i = P_i + V_i = (b w + tail) - t w = tail at a truthful profile:
  // always positive, so voluntary participation holds by construction.
  const SystemConfig config({1.0, 4.0}, 6.0);
  ArcherTardosMechanism mechanism;
  const auto outcome = mechanism.run(config, BidProfile::truthful(config));
  const double s0 = 1.0 / 4.0;
  EXPECT_NEAR(outcome.agents[0].utility,
              archer_tardos_tail_integral(1.0, s0, 6.0), 1e-9);
  EXPECT_GT(outcome.agents[0].utility, 0.0);
  EXPECT_GT(outcome.agents[1].utility, 0.0);
}

TEST(ArcherTardos, PaymentIgnoresExecutionValues) {
  const SystemConfig config({1.0, 2.0}, 4.0);
  ArcherTardosMechanism mechanism;
  const auto honest = mechanism.run(config, BidProfile::truthful(config));
  const auto slack =
      mechanism.run(config, BidProfile::deviate(config, 1, 1.0, 2.0));
  EXPECT_NEAR(slack.agents[1].payment, honest.agents[1].payment, 1e-10);
  EXPECT_FALSE(mechanism.uses_verification());
}

TEST(ArcherTardos, RejectsNonLinearFamily) {
  auto family = std::make_shared<lbmv::model::MM1Family>();
  const SystemConfig config({0.2, 0.4}, 2.0, family);
  ArcherTardosMechanism mechanism;
  EXPECT_THROW((void)mechanism.run(config, BidProfile::truthful(config)),
               lbmv::util::PreconditionError);
}

TEST(ArcherTardos, PaperConfigPaymentsAreFinitePositive) {
  const auto config = lbmv::analysis::paper_table1_config();
  ArcherTardosMechanism mechanism;
  const auto outcome = mechanism.run(config, BidProfile::truthful(config));
  for (const auto& agent : outcome.agents) {
    EXPECT_GT(agent.payment, 0.0);
    EXPECT_TRUE(std::isfinite(agent.payment));
  }
}

}  // namespace

// Tests for fixed-point additive secret sharing over Z_{2^64}.

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <vector>

#include "lbmv/dist/private_sum.h"
#include "lbmv/util/error.h"
#include "lbmv/util/rng.h"

namespace {

using namespace lbmv::dist;
using lbmv::util::Rng;

TEST(FixedPoint, RoundTripsRepresentativeValues) {
  for (double v : {0.0, 1.0, -1.0, 0.123456789, -98765.4321, 1e-9, 2.5e9}) {
    EXPECT_NEAR(FixedPoint::decode(FixedPoint::encode(v)), v,
                0.6 / FixedPoint::kScale)
        << v;
  }
}

TEST(FixedPoint, RejectsOutOfRangeAndNonFinite) {
  EXPECT_THROW((void)FixedPoint::encode(1e10 * 1e9),
               lbmv::util::PreconditionError);
  EXPECT_THROW(
      (void)FixedPoint::encode(std::numeric_limits<double>::infinity()),
      lbmv::util::PreconditionError);
}

TEST(Shares, ReconstructExactlyForManyValues) {
  Rng rng(9);
  for (int trial = 0; trial < 200; ++trial) {
    const double value = rng.uniform(-1e6, 1e6);
    const auto parties = static_cast<std::size_t>(rng.uniform_int(1, 12));
    auto shares = make_shares(value, parties, rng);
    EXPECT_EQ(shares.size(), parties);
    EXPECT_NEAR(reconstruct(shares), value, 1.0 / FixedPoint::kScale);
  }
}

TEST(Shares, AnyStrictSubsetLooksUnrelatedToTheSecret) {
  // Information-theoretic secrecy means a strict subset of shares is a
  // uniform ring element; operationally: dropping one share destroys the
  // reconstruction, and re-sharing the same secret yields fresh shares.
  Rng rng(11);
  const double secret = 42.0;
  auto shares = make_shares(secret, 8, rng);
  auto partial = shares;
  partial.pop_back();
  EXPECT_GT(std::fabs(reconstruct(partial) - secret), 1.0);

  auto reshared = make_shares(secret, 8, rng);
  std::size_t identical = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    identical += shares[i] == reshared[i];
  }
  EXPECT_EQ(identical, 0u);
  EXPECT_NEAR(reconstruct(reshared), secret, 1.0 / FixedPoint::kScale);
}

TEST(Shares, SingleShareSharingIsTheValueItself) {
  Rng rng(1);
  const auto shares = make_shares(-3.25, 1, rng);
  ASSERT_EQ(shares.size(), 1u);
  EXPECT_NEAR(FixedPoint::decode(shares[0]), -3.25,
              1.0 / FixedPoint::kScale);
}

TEST(Shares, SumsOfShareSumsAreAdditive) {
  // The homomorphism the private protocol relies on: combining everyone's
  // per-party partial sums reconstructs the sum of all secrets.
  Rng rng(17);
  const std::vector<double> secrets{1.5, -0.25, 10.0, 3.125};
  const std::size_t parties = 5;
  std::vector<std::uint64_t> partial(parties, 0);
  for (double secret : secrets) {
    const auto shares = make_shares(secret, parties, rng);
    for (std::size_t p = 0; p < parties; ++p) partial[p] += shares[p];
  }
  double expected = 0.0;
  for (double s : secrets) expected += s;
  EXPECT_NEAR(reconstruct(partial), expected,
              static_cast<double>(secrets.size()) / FixedPoint::kScale);
}

TEST(Shares, RejectsZeroParties) {
  Rng rng(1);
  EXPECT_THROW((void)make_shares(1.0, 0, rng),
               lbmv::util::PreconditionError);
  EXPECT_THROW((void)reconstruct({}), lbmv::util::PreconditionError);
}

}  // namespace

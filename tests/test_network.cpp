// Tests for the simulated message-passing network.

#include <gtest/gtest.h>

#include <vector>

#include "lbmv/dist/network.h"
#include "lbmv/util/error.h"

namespace {

using namespace lbmv::dist;
using lbmv::sim::Simulation;

TEST(Network, DeliversMessagesToHandlers) {
  Simulation sim;
  Network network(sim, 2);
  std::vector<double> received;
  network.set_handler(1, [&](const Message& msg) {
    received = msg.payload;
    EXPECT_EQ(msg.from, 0u);
    EXPECT_EQ(msg.type, "bid");
  });
  sim.schedule(0.0, [&] { network.send({0, 1, "bid", {2.5, 3.5}}); });
  sim.run();
  EXPECT_EQ(received, (std::vector<double>{2.5, 3.5}));
}

TEST(Network, DelayIsBasePlusPerDouble) {
  Simulation sim;
  Network::Options options;
  options.base_delay = 1.0;
  options.per_double_delay = 0.5;
  Network network(sim, 2, options);
  double delivery_time = -1.0;
  network.set_handler(1, [&](const Message&) { delivery_time = sim.now(); });
  sim.schedule(0.0, [&] { network.send({0, 1, "x", {1.0, 2.0, 3.0}}); });
  sim.run();
  EXPECT_DOUBLE_EQ(delivery_time, 1.0 + 3 * 0.5);
}

TEST(Network, CountsMessagesDoublesAndTypes) {
  Simulation sim;
  Network network(sim, 3);
  for (NodeId i = 0; i < 3; ++i) network.set_handler(i, [](const Message&) {});
  sim.schedule(0.0, [&] {
    network.send({0, 1, "bid", {1.0}});
    network.send({1, 2, "bid", {2.0}});
    network.send({2, 0, "pay", {3.0, 4.0}});
  });
  sim.run();
  EXPECT_EQ(network.messages_sent(), 3u);
  EXPECT_EQ(network.doubles_sent(), 4u);
  EXPECT_EQ(network.by_type().at("bid"), 2u);
  EXPECT_EQ(network.by_type().at("pay"), 1u);
}

TEST(Network, FifoBetweenEqualDelayMessages) {
  Simulation sim;
  Network network(sim, 2);
  std::vector<int> order;
  network.set_handler(1, [&](const Message& msg) {
    order.push_back(static_cast<int>(msg.payload[0]));
  });
  sim.schedule(0.0, [&] {
    for (int k = 0; k < 5; ++k) {
      network.send({0, 1, "seq", {static_cast<double>(k), 0.0}});
    }
  });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Network, SelfSendIsAllowed) {
  Simulation sim;
  Network network(sim, 1);
  bool delivered = false;
  network.set_handler(0, [&](const Message&) { delivered = true; });
  sim.schedule(0.0, [&] { network.send({0, 0, "self", {}}); });
  sim.run();
  EXPECT_TRUE(delivered);
}

TEST(Network, ValidatesEndpointsAndOptions) {
  Simulation sim;
  Network network(sim, 2);
  network.set_handler(0, [](const Message&) {});
  EXPECT_THROW(network.send({0, 5, "x", {}}),
               lbmv::util::PreconditionError);
  EXPECT_THROW(network.set_handler(7, [](const Message&) {}),
               lbmv::util::PreconditionError);
  Network::Options bad;
  bad.base_delay = -1.0;
  EXPECT_THROW(Network(sim, 2, bad), lbmv::util::PreconditionError);
  EXPECT_THROW(Network(sim, 0), lbmv::util::PreconditionError);
}

TEST(Network, MissingHandlerFailsLoudlyAtDelivery) {
  Simulation sim;
  Network network(sim, 2);
  sim.schedule(0.0, [&] { network.send({0, 1, "x", {}}); });
  EXPECT_THROW(sim.run(), lbmv::util::PreconditionError);
}

TEST(Network, JitterIsDeterministicPerSeed) {
  auto deliveries = [](std::uint64_t seed) {
    Simulation sim;
    Network::Options options;
    options.jitter = 0.5;
    options.seed = seed;
    Network network(sim, 2, options);
    std::vector<double> times;
    network.set_handler(1,
                        [&](const Message&) { times.push_back(sim.now()); });
    sim.schedule(0.0, [&] {
      for (int k = 0; k < 4; ++k) network.send({0, 1, "x", {}});
    });
    sim.run();
    return times;
  };
  EXPECT_EQ(deliveries(3), deliveries(3));
  EXPECT_NE(deliveries(3), deliveries(4));
}

}  // namespace

// Tests for Wardrop equilibria and the price of anarchy on parallel links.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "lbmv/alloc/pr_allocator.h"
#include "lbmv/game/wardrop.h"
#include "lbmv/model/latency.h"
#include "lbmv/util/error.h"
#include "lbmv/util/rng.h"

namespace {

using namespace lbmv::model;
using lbmv::game::check_wardrop;
using lbmv::game::price_of_anarchy;
using lbmv::game::wardrop_equilibrium;

std::vector<std::unique_ptr<LatencyFunction>> linear_links(
    const std::vector<double>& t) {
  std::vector<std::unique_ptr<LatencyFunction>> links;
  for (double ti : t) links.push_back(std::make_unique<LinearLatency>(ti));
  return links;
}

TEST(Wardrop, LinearLinksEquilibriumEqualsPrOptimum) {
  // l(x) = t x: equal latency and equal marginal latency give the same
  // proportional flow, so the equilibrium *is* the PR optimum — the
  // paper's model is routing-benign.
  const std::vector<double> t{1.0, 2.0, 5.0, 10.0};
  const double demand = 20.0;
  const auto links = linear_links(t);
  const Allocation equilibrium = wardrop_equilibrium(links, demand);
  const Allocation optimum = lbmv::alloc::pr_allocate(t, demand);
  for (std::size_t i = 0; i < t.size(); ++i) {
    EXPECT_NEAR(equilibrium[i], optimum[i], 1e-8);
  }
  const auto poa = price_of_anarchy(links, demand);
  EXPECT_NEAR(poa.price_of_anarchy(), 1.0, 1e-8);
}

TEST(Wardrop, EquilibriumConditionsCertified) {
  std::vector<std::unique_ptr<LatencyFunction>> links;
  links.push_back(std::make_unique<AffineLatency>(0.5, 1.0));
  links.push_back(std::make_unique<AffineLatency>(0.1, 3.0));
  links.push_back(std::make_unique<MM1Latency>(4.0));
  const double demand = 3.0;
  const Allocation flow = wardrop_equilibrium(links, demand);
  const auto report = check_wardrop(flow, links, demand, 1e-6);
  EXPECT_TRUE(report.valid()) << "violation " << report.max_violation;
}

TEST(Wardrop, PigouExampleGivesFourThirds) {
  // Pigou: a (nearly) constant link vs l(x) = x, unit demand.  Equilibrium
  // dumps everything on the variable link (latency 1); optimum splits.
  // PoA -> 4/3 as the constant link's slope -> 0.
  std::vector<std::unique_ptr<LatencyFunction>> links;
  links.push_back(std::make_unique<AffineLatency>(1.0, 1e-6));
  links.push_back(std::make_unique<LinearLatency>(1.0));
  const auto poa = price_of_anarchy(links, 1.0);
  EXPECT_NEAR(poa.equilibrium_latency, 1.0, 1e-4);
  EXPECT_NEAR(poa.optimal_latency, 0.75, 1e-4);
  EXPECT_NEAR(poa.price_of_anarchy(), 4.0 / 3.0, 1e-3);
}

TEST(Wardrop, SlowExpensiveLinkStaysUnused) {
  std::vector<std::unique_ptr<LatencyFunction>> links;
  links.push_back(std::make_unique<LinearLatency>(1.0));
  links.push_back(std::make_unique<AffineLatency>(100.0, 1.0));  // awful
  const Allocation flow = wardrop_equilibrium(links, 2.0);
  EXPECT_NEAR(flow[0], 2.0, 1e-9);
  EXPECT_NEAR(flow[1], 0.0, 1e-9);
  EXPECT_TRUE(check_wardrop(flow, links, 2.0).valid());
}

TEST(Wardrop, Mm1LinksRespectCapacity) {
  std::vector<std::unique_ptr<LatencyFunction>> links;
  links.push_back(std::make_unique<MM1Latency>(3.0));
  links.push_back(std::make_unique<MM1Latency>(2.0));
  const double demand = 4.0;
  const Allocation flow = wardrop_equilibrium(links, demand);
  EXPECT_TRUE(flow.is_feasible(demand, 1e-9));
  EXPECT_LT(flow[0], 3.0);
  EXPECT_LT(flow[1], 2.0);
  EXPECT_TRUE(check_wardrop(flow, links, demand, 1e-6).valid());
  // Equilibrium is never better than the optimum.
  const auto poa = price_of_anarchy(links, demand);
  EXPECT_GE(poa.price_of_anarchy(), 1.0 - 1e-9);
}

TEST(Wardrop, RejectsBadInput) {
  std::vector<std::unique_ptr<LatencyFunction>> none;
  EXPECT_THROW((void)wardrop_equilibrium(none, 1.0),
               lbmv::util::PreconditionError);
  std::vector<std::unique_ptr<LatencyFunction>> links;
  links.push_back(std::make_unique<MM1Latency>(1.0));
  EXPECT_THROW((void)wardrop_equilibrium(links, 2.0),
               lbmv::util::PreconditionError);
  links.clear();
  links.push_back(std::make_unique<LinearLatency>(1.0));
  EXPECT_THROW((void)wardrop_equilibrium(links, -1.0),
               lbmv::util::PreconditionError);
}

TEST(Wardrop, CheckRejectsNonEquilibriumFlows) {
  const auto links = linear_links({1.0, 1.0});
  // Feasible but lopsided: latencies differ.
  const Allocation lopsided({1.5, 0.5});
  EXPECT_FALSE(check_wardrop(lopsided, links, 2.0).valid());
  // Infeasible total.
  EXPECT_FALSE(check_wardrop(Allocation({1.0, 0.5}), links, 2.0).feasible);
}

// Property sweep: on random affine instances the PoA lives in [1, 4/3]
// (Roughgarden–Tardos bound for affine latencies).
class AffinePoa : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AffinePoa, WithinTheFourThirdsBound) {
  lbmv::util::Rng rng(GetParam());
  const auto n = static_cast<std::size_t>(rng.uniform_int(2, 10));
  std::vector<std::unique_ptr<LatencyFunction>> links;
  for (std::size_t i = 0; i < n; ++i) {
    links.push_back(std::make_unique<AffineLatency>(
        rng.uniform(0.0, 5.0), rng.uniform(0.05, 4.0)));
  }
  const double demand = rng.uniform(0.5, 30.0);
  const auto poa = price_of_anarchy(links, demand);
  EXPECT_GE(poa.price_of_anarchy(), 1.0 - 1e-8) << "seed " << GetParam();
  EXPECT_LE(poa.price_of_anarchy(), 4.0 / 3.0 + 1e-6)
      << "seed " << GetParam();
  // And the equilibrium the solver returns really is one.
  const Allocation flow = wardrop_equilibrium(links, demand);
  EXPECT_TRUE(check_wardrop(flow, links, demand, 1e-5).valid())
      << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, AffinePoa,
                         ::testing::Range<std::uint64_t>(1, 21));

}  // namespace

// Tests for multi-epoch operation under drifting speeds and stale bids.

#include <gtest/gtest.h>

#include <cmath>

#include "lbmv/core/comp_bonus.h"
#include "lbmv/sim/epochs.h"
#include "lbmv/util/error.h"

namespace {

using lbmv::core::CompBonusMechanism;
using lbmv::model::SystemConfig;
using lbmv::sim::EpochOptions;
using lbmv::sim::run_epochs;

const SystemConfig& base_config() {
  static const SystemConfig config({1.0, 2.0, 5.0}, 10.0);
  return config;
}

TEST(Epochs, NoDriftFreshBidsRunAtTheOptimumEveryEpoch) {
  CompBonusMechanism mechanism;
  EpochOptions options;
  options.epochs = 10;
  options.drift_sigma = 0.0;
  const auto report = run_epochs(mechanism, base_config(), options);
  ASSERT_EQ(report.records.size(), 10u);
  for (const auto& record : report.records) {
    EXPECT_NEAR(record.efficiency, 1.0, 1e-12);
    EXPECT_EQ(record.true_values, std::vector<double>({1.0, 2.0, 5.0}));
  }
  EXPECT_NEAR(report.mean_efficiency, 1.0, 1e-12);
}

TEST(Epochs, FreshBidsStayOptimalEvenUnderDrift) {
  // With zero lag everyone always reports the current truth, so every
  // epoch is individually optimal regardless of how speeds move.
  CompBonusMechanism mechanism;
  EpochOptions options;
  options.epochs = 25;
  options.drift_sigma = 0.15;
  const auto report = run_epochs(mechanism, base_config(), options);
  for (const auto& record : report.records) {
    EXPECT_NEAR(record.efficiency, 1.0, 1e-9);
  }
}

TEST(Epochs, DriftActuallyMovesTheTypes) {
  CompBonusMechanism mechanism;
  EpochOptions options;
  options.epochs = 25;
  options.drift_sigma = 0.2;
  const auto report = run_epochs(mechanism, base_config(), options);
  EXPECT_NE(report.records.front().true_values,
            report.records.back().true_values);
  for (const auto& record : report.records) {
    for (double t : record.true_values) {
      EXPECT_GE(t, options.min_type);
      EXPECT_LE(t, options.max_type);
    }
  }
}

TEST(Epochs, StaleBidsDegradeEfficiency) {
  CompBonusMechanism mechanism;
  EpochOptions fresh;
  fresh.epochs = 40;
  fresh.drift_sigma = 0.25;
  EpochOptions stale = fresh;
  stale.bid_lags = {3, 3, 3};
  const auto fresh_report = run_epochs(mechanism, base_config(), fresh);
  const auto stale_report = run_epochs(mechanism, base_config(), stale);
  EXPECT_NEAR(fresh_report.mean_efficiency, 1.0, 1e-9);
  EXPECT_LT(stale_report.mean_efficiency, 0.995);
  EXPECT_GT(stale_report.mean_efficiency, 0.3);  // degraded, not destroyed
}

TEST(Epochs, StaleAgentEarnsLessThanItsFreshCounterfactual) {
  // Staleness behaves like unintentional misreporting: the one stale agent
  // accumulates less utility than in the identical run where it is fresh
  // (same seed => identical drift path).
  CompBonusMechanism mechanism;
  EpochOptions fresh;
  fresh.epochs = 40;
  fresh.drift_sigma = 0.25;
  fresh.bid_lags = {0, 0, 0};
  EpochOptions stale = fresh;
  stale.bid_lags = {2, 0, 0};
  const auto fresh_report = run_epochs(mechanism, base_config(), fresh);
  const auto stale_report = run_epochs(mechanism, base_config(), stale);
  EXPECT_LT(stale_report.cumulative_utility[0],
            fresh_report.cumulative_utility[0]);
}

TEST(Epochs, CumulativeUtilitySumsPerEpochUtilities) {
  CompBonusMechanism mechanism;
  EpochOptions options;
  options.epochs = 12;
  options.drift_sigma = 0.1;
  const auto report = run_epochs(mechanism, base_config(), options);
  for (std::size_t i = 0; i < base_config().size(); ++i) {
    double total = 0.0;
    for (const auto& record : report.records) {
      total += record.outcome.agents[i].utility;
    }
    EXPECT_NEAR(report.cumulative_utility[i], total, 1e-9);
  }
}

TEST(Epochs, DeterministicForFixedSeed) {
  CompBonusMechanism mechanism;
  EpochOptions options;
  options.epochs = 15;
  options.drift_sigma = 0.2;
  const auto a = run_epochs(mechanism, base_config(), options);
  const auto b = run_epochs(mechanism, base_config(), options);
  EXPECT_EQ(a.records.back().true_values, b.records.back().true_values);
  EXPECT_DOUBLE_EQ(a.mean_efficiency, b.mean_efficiency);
}

TEST(Epochs, ValidatesOptions) {
  CompBonusMechanism mechanism;
  EpochOptions bad;
  bad.epochs = 0;
  EXPECT_THROW((void)run_epochs(mechanism, base_config(), bad),
               lbmv::util::PreconditionError);
  bad = EpochOptions{};
  bad.bid_lags = {1};  // wrong arity
  EXPECT_THROW((void)run_epochs(mechanism, base_config(), bad),
               lbmv::util::PreconditionError);
  bad = EpochOptions{};
  bad.bid_lags = {0, 0, -1};
  EXPECT_THROW((void)run_epochs(mechanism, base_config(), bad),
               lbmv::util::PreconditionError);
  bad = EpochOptions{};
  bad.min_type = 2.0;  // initial types outside bounds
  EXPECT_THROW((void)run_epochs(mechanism, base_config(), bad),
               lbmv::util::PreconditionError);
}

}  // namespace

// Tests for the bandit learners: truth-telling must be *discoverable* from
// utility feedback alone under the verified mechanism.

#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "lbmv/alloc/pr_allocator.h"
#include "lbmv/core/comp_bonus.h"
#include "lbmv/core/no_payment.h"
#include "lbmv/strategy/learning.h"
#include "lbmv/util/error.h"

namespace {

using lbmv::core::CompBonusMechanism;
using lbmv::core::NoPaymentMechanism;
using lbmv::model::SystemConfig;
using lbmv::strategy::LearningOptions;
using lbmv::strategy::run_learning;

const SystemConfig& test_config() {
  static const SystemConfig config({1.0, 1.5, 2.0, 5.0, 8.0}, 15.0);
  return config;
}

TEST(Learning, SingleLearnerAgainstTruthfulOpponentsFindsTruth) {
  // Against truthful opponents truth is exactly dominant, so the bandit's
  // greedy arm must land on (1, 1) and the greedy profile on the optimum.
  CompBonusMechanism mechanism;
  LearningOptions options;
  options.single_learner = 0;
  options.rounds = 800;
  const auto result = run_learning(mechanism, test_config(), options);
  EXPECT_DOUBLE_EQ(result.final_bid_mult[0], 1.0);
  EXPECT_DOUBLE_EQ(result.final_exec_mult[0], 1.0);
  EXPECT_DOUBLE_EQ(result.truthful_fraction, 1.0);
  const double optimal = lbmv::alloc::pr_optimal_latency(
      std::vector<double>(test_config().true_values().begin(),
                          test_config().true_values().end()),
      test_config().arrival_rate());
  EXPECT_NEAR(result.final_greedy_latency, optimal, 1e-9);
}

TEST(Learning, CoLearnersAllDiscoverFullCapacityExecution) {
  // With everyone learning simultaneously, opponents' exploration noise
  // blurs the bid landscape (the scope-boundary effect), but verification
  // makes slack execution unambiguously bad: every learner's greedy arm
  // has execution multiplier 1.
  CompBonusMechanism mechanism;
  LearningOptions options;
  options.rounds = 1500;
  const auto result = run_learning(mechanism, test_config(), options);
  for (std::size_t i = 0; i < test_config().size(); ++i) {
    EXPECT_DOUBLE_EQ(result.final_exec_mult[i], 1.0) << "agent " << i;
  }
  // ... and the greedy profile stays within a few percent of the optimum.
  const double optimal = lbmv::alloc::pr_optimal_latency(
      std::vector<double>(test_config().true_values().begin(),
                          test_config().true_values().end()),
      test_config().arrival_rate());
  EXPECT_LT(result.final_greedy_latency, 1.10 * optimal);
}

TEST(Learning, NoPaymentLearnersRaceToTheBidCeiling) {
  // Without payments the learners discover bid inflation; every greedy arm
  // is the largest bid multiplier on the grid.  (Note: if *everyone* hits
  // the same cap, the PR allocation is unchanged — the race has no interior
  // equilibrium, which is the collapse the paper's introduction describes.)
  NoPaymentMechanism mechanism;
  LearningOptions options;
  options.rounds = 1500;
  const auto result = run_learning(mechanism, test_config(), options);
  for (std::size_t i = 0; i < test_config().size(); ++i) {
    EXPECT_DOUBLE_EQ(result.final_bid_mult[i], 3.0) << "agent " << i;
  }
  EXPECT_DOUBLE_EQ(result.truthful_fraction, 0.0);
}

TEST(Learning, TraceHasOneEntryPerRound) {
  CompBonusMechanism mechanism;
  LearningOptions options;
  options.rounds = 50;
  const auto result = run_learning(mechanism, test_config(), options);
  EXPECT_EQ(result.latency_trace.size(), 50u);
  for (double l : result.latency_trace) EXPECT_GT(l, 0.0);
}

TEST(Learning, DeterministicForFixedSeed) {
  CompBonusMechanism mechanism;
  LearningOptions options;
  options.rounds = 120;
  const auto a = run_learning(mechanism, test_config(), options);
  const auto b = run_learning(mechanism, test_config(), options);
  EXPECT_EQ(a.latency_trace, b.latency_trace);
  EXPECT_EQ(a.final_bid_mult, b.final_bid_mult);
}

TEST(Learning, ValidatesOptions) {
  CompBonusMechanism mechanism;
  LearningOptions bad;
  bad.exec_arms = {0.5};
  EXPECT_THROW((void)run_learning(mechanism, test_config(), bad),
               lbmv::util::PreconditionError);
  bad = LearningOptions{};
  bad.rounds = 0;
  EXPECT_THROW((void)run_learning(mechanism, test_config(), bad),
               lbmv::util::PreconditionError);
  bad = LearningOptions{};
  bad.single_learner = 99;
  EXPECT_THROW((void)run_learning(mechanism, test_config(), bad),
               lbmv::util::PreconditionError);
  bad = LearningOptions{};
  bad.bid_arms = {-1.0};
  EXPECT_THROW((void)run_learning(mechanism, test_config(), bad),
               lbmv::util::PreconditionError);
}

TEST(Learning, ValidatesNonFiniteOptions) {
  CompBonusMechanism mechanism;
  const double nan = std::numeric_limits<double>::quiet_NaN();
  LearningOptions bad;
  bad.bid_arms = {1.0, nan};
  EXPECT_THROW((void)run_learning(mechanism, test_config(), bad),
               lbmv::util::PreconditionError);
  bad = LearningOptions{};
  bad.epsilon = nan;
  EXPECT_THROW((void)run_learning(mechanism, test_config(), bad),
               lbmv::util::PreconditionError);
  bad = LearningOptions{};
  bad.epsilon_decay = 0.0;
  EXPECT_THROW((void)run_learning(mechanism, test_config(), bad),
               lbmv::util::PreconditionError);
  bad = LearningOptions{};
  bad.epsilon_decay = 1.5;
  EXPECT_THROW((void)run_learning(mechanism, test_config(), bad),
               lbmv::util::PreconditionError);
}

TEST(Learning, ReplicatedEnsembleIsThreadCountInvariant) {
  // Replication r derives its seed from Rng(options.seed).split(r + 1) and
  // results merge in replication order, so the ensemble is bit-identical
  // across pool sizes and grains.
  CompBonusMechanism mechanism;
  LearningOptions options;
  options.rounds = 80;
  const std::size_t replications = 6;
  lbmv::util::ThreadPool one(1);
  const auto baseline = lbmv::strategy::run_learning_replicated(
      mechanism, test_config(), options, replications, &one);
  ASSERT_EQ(baseline.replications.size(), replications);
  for (std::size_t threads : {2ul, 8ul}) {
    lbmv::util::ThreadPool pool(threads);
    for (std::size_t grain : {1ul, 3ul}) {
      const auto ensemble = lbmv::strategy::run_learning_replicated(
          mechanism, test_config(), options, replications, &pool, grain);
      ASSERT_EQ(ensemble.replications.size(), replications);
      for (std::size_t r = 0; r < replications; ++r) {
        EXPECT_EQ(ensemble.replications[r].latency_trace,
                  baseline.replications[r].latency_trace)
            << "threads=" << threads << " grain=" << grain << " rep=" << r;
        EXPECT_EQ(ensemble.replications[r].final_bid_mult,
                  baseline.replications[r].final_bid_mult);
        EXPECT_EQ(ensemble.replications[r].final_exec_mult,
                  baseline.replications[r].final_exec_mult);
      }
      EXPECT_EQ(ensemble.mean_truthful_fraction(),
                baseline.mean_truthful_fraction());
      EXPECT_EQ(ensemble.mean_greedy_latency(),
                baseline.mean_greedy_latency());
    }
  }
}

TEST(Learning, ReplicationsDifferFromEachOther) {
  // Distinct seed streams: the replications are not copies of one run.
  CompBonusMechanism mechanism;
  LearningOptions options;
  options.rounds = 80;
  lbmv::util::ThreadPool pool(2);
  const auto ensemble = lbmv::strategy::run_learning_replicated(
      mechanism, test_config(), options, 4, &pool);
  EXPECT_NE(ensemble.replications[0].latency_trace,
            ensemble.replications[1].latency_trace);
}

}  // namespace

// Unit tests for lbmv/util/rng.h and lbmv/util/stats.h.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "lbmv/util/error.h"
#include "lbmv/util/rng.h"
#include "lbmv/util/stats.h"

namespace {

using lbmv::util::Rng;
using lbmv::util::RunningStats;

TEST(Rng, EqualSeedsGiveEqualStreams) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform() == b.uniform()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, SplitIsDeterministicAndIndependentOfParentState) {
  Rng parent(99);
  Rng child1 = parent.split(7);
  (void)parent.uniform();  // advancing the parent must not affect splits
  Rng child2 = parent.split(7);
  for (int i = 0; i < 50; ++i) {
    EXPECT_DOUBLE_EQ(child1.uniform(), child2.uniform());
  }
}

TEST(Rng, SplitStreamsWithDistinctIndicesDiffer) {
  Rng parent(99);
  Rng a = parent.split(1);
  Rng b = parent.split(2);
  EXPECT_NE(a.uniform(), b.uniform());
}

TEST(Rng, UniformRangeRespected) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(2.0, 3.0);
    EXPECT_GE(u, 2.0);
    EXPECT_LT(u, 3.0);
  }
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(0, 3);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 3);
    saw_lo |= v == 0;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, ExponentialHasRequestedMean) {
  Rng rng(17);
  RunningStats stats;
  for (int i = 0; i < 200000; ++i) stats.add(rng.exponential(4.0));
  EXPECT_NEAR(stats.mean(), 0.25, 0.005);
}

TEST(Rng, CategoricalMatchesWeights) {
  Rng rng(21);
  const std::vector<double> weights{1.0, 3.0, 0.0, 6.0};
  std::vector<int> counts(4, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.categorical(weights)];
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[0] / double(n), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / double(n), 0.3, 0.01);
  EXPECT_NEAR(counts[3] / double(n), 0.6, 0.01);
}

TEST(Rng, PreconditionViolationsThrow) {
  Rng rng(1);
  EXPECT_THROW((void)rng.uniform(3.0, 2.0), lbmv::util::PreconditionError);
  EXPECT_THROW((void)rng.exponential(0.0), lbmv::util::PreconditionError);
  EXPECT_THROW((void)rng.categorical({}), lbmv::util::PreconditionError);
  EXPECT_THROW((void)rng.categorical({0.0, 0.0}),
               lbmv::util::PreconditionError);
  EXPECT_THROW((void)rng.bernoulli(1.5), lbmv::util::PreconditionError);
}

TEST(RunningStats, MatchesBatchFormulas) {
  const std::vector<double> xs{1.0, 2.5, -3.0, 4.0, 0.5};
  RunningStats stats;
  for (double x : xs) stats.add(x);
  EXPECT_EQ(stats.count(), xs.size());
  EXPECT_NEAR(stats.mean(), lbmv::util::mean(xs), 1e-12);
  EXPECT_NEAR(stats.variance(), lbmv::util::variance(xs), 1e-12);
  EXPECT_DOUBLE_EQ(stats.min(), -3.0);
  EXPECT_DOUBLE_EQ(stats.max(), 4.0);
  EXPECT_NEAR(stats.sum(), 5.0, 1e-12);
}

TEST(RunningStats, MergeEqualsSingleAccumulator) {
  Rng rng(3);
  RunningStats all, left, right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(2.0, 5.0);
    all.add(x);
    (i % 2 == 0 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-10);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-8);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(RunningStats, MergeWithEmptySidesIsIdentity) {
  RunningStats a, b;
  a.add(1.0);
  a.add(2.0);
  RunningStats a_copy = a;
  a.merge(b);  // empty right side
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), a_copy.mean());
  b.merge(a);  // empty left side
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), a.mean());
}

TEST(RunningStats, EmptyAndSingleSampleEdgeCases) {
  RunningStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_DOUBLE_EQ(stats.mean(), 0.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
  stats.add(7.0);
  EXPECT_DOUBLE_EQ(stats.mean(), 7.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
  EXPECT_DOUBLE_EQ(stats.stderr_mean(), 0.0);
}

TEST(Percentile, InterpolatesLinearly) {
  const std::vector<double> xs{4.0, 1.0, 3.0, 2.0};  // unsorted on purpose
  EXPECT_DOUBLE_EQ(lbmv::util::percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(lbmv::util::percentile(xs, 100.0), 4.0);
  EXPECT_DOUBLE_EQ(lbmv::util::percentile(xs, 50.0), 2.5);
  EXPECT_DOUBLE_EQ(lbmv::util::percentile(xs, 25.0), 1.75);
}

TEST(Percentile, RejectsBadInput) {
  EXPECT_THROW((void)lbmv::util::percentile({}, 50.0),
               lbmv::util::PreconditionError);
  const std::vector<double> xs{1.0};
  EXPECT_THROW((void)lbmv::util::percentile(xs, 101.0),
               lbmv::util::PreconditionError);
}

TEST(FitLine, RecoversExactLine) {
  std::vector<double> xs, ys;
  for (int i = 0; i < 20; ++i) {
    xs.push_back(i * 0.5);
    ys.push_back(3.0 - 2.0 * i * 0.5);
  }
  const auto fit = lbmv::util::fit_line(xs, ys);
  EXPECT_NEAR(fit.intercept, 3.0, 1e-12);
  EXPECT_NEAR(fit.slope, -2.0, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(FitLine, NoisyDataGivesApproximateSlope) {
  Rng rng(11);
  std::vector<double> xs, ys;
  for (int i = 0; i < 5000; ++i) {
    const double x = rng.uniform(0.0, 10.0);
    xs.push_back(x);
    ys.push_back(1.0 + 4.0 * x + rng.normal(0.0, 0.5));
  }
  const auto fit = lbmv::util::fit_line(xs, ys);
  EXPECT_NEAR(fit.slope, 4.0, 0.05);
  EXPECT_NEAR(fit.intercept, 1.0, 0.1);
  EXPECT_GT(fit.r_squared, 0.99);
}

TEST(FitLine, RejectsDegenerateInput) {
  const std::vector<double> x1{1.0}, y1{2.0};
  EXPECT_THROW((void)lbmv::util::fit_line(x1, y1),
               lbmv::util::PreconditionError);
  const std::vector<double> same_x{2.0, 2.0}, ys{1.0, 5.0};
  EXPECT_THROW((void)lbmv::util::fit_line(same_x, ys),
               lbmv::util::PreconditionError);
}

TEST(RelDiff, BehavesAsRelativeMetric) {
  EXPECT_DOUBLE_EQ(lbmv::util::rel_diff(0.0, 0.0), 0.0);
  EXPECT_NEAR(lbmv::util::rel_diff(100.0, 101.0), 1.0 / 101.0, 1e-12);
  EXPECT_NEAR(lbmv::util::rel_diff(-2.0, 2.0), 2.0, 1e-12);
}

}  // namespace

// Tests for the compensation-and-bonus mechanism with verification —
// the paper's Definition 3.3 — including the pinned numbers from §4.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "lbmv/alloc/convex_allocator.h"
#include "lbmv/analysis/paper_config.h"
#include "lbmv/core/comp_bonus.h"
#include "lbmv/util/error.h"

namespace {

using lbmv::analysis::paper_table1_config;
using lbmv::core::CompBonusMechanism;
using lbmv::core::CompensationBasis;
using lbmv::core::MechanismOutcome;
using lbmv::model::BidProfile;
using lbmv::model::SystemConfig;

// Shared fixture values for the paper's Table 1 system at R = 20.
constexpr double kLStar = 400.0 / 5.1;        // 78.4314 (True1 latency)
constexpr double kLMinusC1 = 400.0 / 4.1;     // 97.5610 (optimum without C1)

TEST(CompBonus, True1MatchesPaperHeadlineNumbers) {
  const SystemConfig config = paper_table1_config();
  CompBonusMechanism mechanism;
  const MechanismOutcome outcome =
      mechanism.run(config, BidProfile::truthful(config));

  EXPECT_NEAR(outcome.actual_latency, kLStar, 1e-9);
  EXPECT_NEAR(outcome.actual_latency, 78.43, 0.005);  // as printed in §4

  const auto& c1 = outcome.agents[0];
  const double x1 = 20.0 / 5.1;
  EXPECT_NEAR(c1.allocation, x1, 1e-12);
  EXPECT_NEAR(c1.compensation, x1 * x1, 1e-9);          // t~ = 1
  EXPECT_NEAR(c1.bonus, kLMinusC1 - kLStar, 1e-9);      // 19.1296
  EXPECT_NEAR(c1.valuation, -x1 * x1, 1e-9);
  EXPECT_NEAR(c1.utility, c1.bonus, 1e-9);  // compensation cancels valuation
}

TEST(CompBonus, UtilityAlwaysEqualsBonusUnderExecutionBasis) {
  // U_i = C_i + B_i + V_i with C_i = -V_i is the structural identity the
  // truthfulness proof rests on; it must hold for arbitrary profiles.
  const SystemConfig config({1.0, 2.0, 4.0}, 10.0);
  CompBonusMechanism mechanism;
  const BidProfile profile = BidProfile::deviate(config, 2, 1.7, 1.3);
  const MechanismOutcome outcome = mechanism.run(config, profile);
  for (const auto& agent : outcome.agents) {
    EXPECT_NEAR(agent.utility, agent.bonus, 1e-9);
    EXPECT_NEAR(agent.compensation, -agent.valuation, 1e-9);
    EXPECT_NEAR(agent.payment, agent.compensation + agent.bonus, 1e-12);
  }
}

TEST(CompBonus, BonusIsMarginalContribution) {
  // B_i = L_{-i} - L: with everyone truthful, faster computers contribute
  // more and earn strictly larger bonuses.
  const SystemConfig config = paper_table1_config();
  CompBonusMechanism mechanism;
  const MechanismOutcome outcome =
      mechanism.run(config, BidProfile::truthful(config));
  // Group representatives: C1 (t=1), C3 (t=2), C6 (t=5), C11 (t=10).
  const double b1 = outcome.agents[0].bonus;
  const double b3 = outcome.agents[2].bonus;
  const double b6 = outcome.agents[5].bonus;
  const double b11 = outcome.agents[10].bonus;
  EXPECT_GT(b1, b3);
  EXPECT_GT(b3, b6);
  EXPECT_GT(b6, b11);
  EXPECT_GT(b11, 0.0);
  // Closed forms: L_{-i} = R^2 / (5.1 - 1/t_i).
  EXPECT_NEAR(b3, 400.0 / 4.6 - kLStar, 1e-9);
  EXPECT_NEAR(b11, 400.0 / 5.0 - kLStar, 1e-9);
}

TEST(CompBonus, EqualAgentsGetEqualOutcomes) {
  const SystemConfig config({2.0, 2.0, 2.0}, 6.0);
  CompBonusMechanism mechanism;
  const MechanismOutcome outcome =
      mechanism.run(config, BidProfile::truthful(config));
  for (std::size_t i = 1; i < 3; ++i) {
    EXPECT_NEAR(outcome.agents[i].payment, outcome.agents[0].payment, 1e-10);
    EXPECT_NEAR(outcome.agents[i].utility, outcome.agents[0].utility, 1e-10);
  }
}

TEST(CompBonus, SlowExecutionLowersEveryUtility) {
  // When C1 slacks, the measured L rises, so *every* agent's bonus (and
  // hence utility) drops — the mechanism socialises the damage it observed.
  const SystemConfig config = paper_table1_config();
  CompBonusMechanism mechanism;
  const MechanismOutcome honest =
      mechanism.run(config, BidProfile::truthful(config));
  const MechanismOutcome slack =
      mechanism.run(config, BidProfile::deviate(config, 0, 1.0, 2.0));
  for (std::size_t i = 0; i < config.size(); ++i) {
    EXPECT_LT(slack.agents[i].utility, honest.agents[i].utility)
        << "agent " << i;
  }
}

TEST(CompBonus, Low2UtilityIsNegativePaymentStaysPositive) {
  // The paper's Low2 discussion: bonus negative because L > L_{-1}.  Under
  // Definition 3.3's execution-based compensation the *payment* nevertheless
  // stays positive (|B| < C) — the documented inconsistency with the
  // paper's prose; see EXPERIMENTS.md.
  const SystemConfig config = paper_table1_config();
  CompBonusMechanism mechanism;
  const MechanismOutcome outcome =
      mechanism.run(config, BidProfile::deviate(config, 0, 0.5, 2.0));
  const auto& c1 = outcome.agents[0];
  EXPECT_GT(outcome.actual_latency, kLMinusC1);  // L exceeds L_{-1}
  EXPECT_LT(c1.bonus, 0.0);
  EXPECT_LT(c1.utility, 0.0);
  EXPECT_NEAR(c1.utility, -32.5116, 5e-4);
  EXPECT_GT(c1.payment, 0.0);
  EXPECT_NEAR(c1.payment, 53.4868, 5e-4);
}

TEST(CompBonus, BidBasisVariantMakesLow2PaymentNegative) {
  // The ablation variant under which the paper's "payment ... is negative"
  // sentence holds: C_i = b_i x_i^2 = 21.50 < |B_1| = 32.51.
  const SystemConfig config = paper_table1_config();
  CompBonusMechanism mechanism(lbmv::core::default_allocator(),
                               CompensationBasis::kBid);
  const MechanismOutcome outcome =
      mechanism.run(config, BidProfile::deviate(config, 0, 0.5, 2.0));
  const auto& c1 = outcome.agents[0];
  EXPECT_LT(c1.payment, 0.0);
  EXPECT_NEAR(c1.payment, -11.0120, 5e-4);
  EXPECT_GT(std::fabs(c1.bonus), c1.compensation);
}

TEST(CompBonus, BidBasisAgreesWithExecutionBasisWhenConsistent) {
  // When every agent executes exactly at its bid the two bases coincide.
  const SystemConfig config({1.0, 3.0}, 5.0);
  CompBonusMechanism exec_basis;
  CompBonusMechanism bid_basis(lbmv::core::default_allocator(),
                               CompensationBasis::kBid);
  BidProfile profile = BidProfile::truthful(config);
  profile.bids[0] = 2.0;
  profile.executions[0] = 2.0;  // consistent over-bid
  const auto a = exec_basis.run(config, profile);
  const auto b = bid_basis.run(config, profile);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_NEAR(a.agents[i].payment, b.agents[i].payment, 1e-10);
  }
}

TEST(CompBonus, TwoAgentSystemWorks) {
  const SystemConfig config({1.0, 1.0}, 2.0);
  CompBonusMechanism mechanism;
  const MechanismOutcome outcome =
      mechanism.run(config, BidProfile::truthful(config));
  // x = (1, 1); L = 2; L_{-i} = R^2 / 1 = 4; bonus = 2 each.
  EXPECT_NEAR(outcome.actual_latency, 2.0, 1e-12);
  EXPECT_NEAR(outcome.agents[0].bonus, 2.0, 1e-12);
  EXPECT_NEAR(outcome.agents[0].payment, 1.0 + 2.0, 1e-12);
}

TEST(CompBonus, SingleAgentRejected) {
  const SystemConfig config({1.0}, 2.0);
  CompBonusMechanism mechanism;
  EXPECT_THROW((void)mechanism.run(config, BidProfile::truthful(config)),
               lbmv::util::PreconditionError);
}

TEST(CompBonus, ReportedVsActualLatencyDiverge) {
  const SystemConfig config({1.0, 2.0}, 6.0);
  CompBonusMechanism mechanism;
  const MechanismOutcome outcome =
      mechanism.run(config, BidProfile::deviate(config, 0, 1.0, 3.0));
  EXPECT_GT(outcome.actual_latency, outcome.reported_latency);
}

TEST(CompBonus, GeneralisesToMm1WithConvexAllocator) {
  // Extension: same construction on the companion paper's M/M/1 model.
  // Every leave-one-out subsystem must still absorb R (mu = {5, 4, 3},
  // R = 4): the bonus term is undefined otherwise (see the test below).
  auto family = std::make_shared<lbmv::model::MM1Family>();
  const SystemConfig config({0.2, 0.25, 1.0 / 3.0}, 4.0, family);
  CompBonusMechanism mechanism(
      std::make_shared<lbmv::alloc::ConvexAllocator>());
  const MechanismOutcome outcome =
      mechanism.run(config, BidProfile::truthful(config));
  EXPECT_TRUE(outcome.allocation.is_feasible(4.0, 1e-8));
  for (const auto& agent : outcome.agents) {
    EXPECT_GE(agent.utility, -1e-8);  // voluntary participation
    EXPECT_NEAR(agent.utility, agent.bonus, 1e-8);
  }
}

TEST(CompBonus, Mm1LeaveOneOutInfeasibilityIsRejected) {
  // If removing a computer leaves too little capacity for R, the bonus term
  // L_{-i} is undefined; the mechanism must refuse loudly rather than pay
  // garbage.  mu = {5, 2}, R = 4: without the fast machine only 2 remains.
  auto family = std::make_shared<lbmv::model::MM1Family>();
  const SystemConfig config({0.2, 0.5}, 4.0, family);
  CompBonusMechanism mechanism(
      std::make_shared<lbmv::alloc::ConvexAllocator>());
  EXPECT_THROW((void)mechanism.run(config, BidProfile::truthful(config)),
               lbmv::util::PreconditionError);
}

TEST(CompBonus, PaymentIdenticalToClarkeForUnilateralSlack) {
  // Structural identity: when only agent i deviates (others execute at
  // their bids), the verified compensation rise exactly cancels the bonus
  // drop, so the deviator's *payment* equals the Clarke payment
  // L_{-i} - sum_{j!=i} b_j x_j^2 and is independent of its own execution
  // value.  Verification shows up in the deviator's utility and in the
  // *other* agents' payments instead (see the next test).
  const SystemConfig config({1.0, 2.0, 5.0}, 10.0);
  CompBonusMechanism mechanism;
  const auto honest = mechanism.run(config, BidProfile::truthful(config));
  const auto slack =
      mechanism.run(config, BidProfile::deviate(config, 0, 1.0, 2.5));
  EXPECT_NEAR(slack.agents[0].payment, honest.agents[0].payment, 1e-9);
  EXPECT_LT(slack.agents[0].utility, honest.agents[0].utility);
}

TEST(CompBonus, SlackIsSocialisedThroughOtherAgentsPayments) {
  // ... and here is where the verified mechanism differs from VCG: agent
  // 0's slack lowers every *other* agent's bonus (and hence payment),
  // because their bonuses are anchored to the measured total latency.
  const SystemConfig config({1.0, 2.0, 5.0}, 10.0);
  CompBonusMechanism mechanism;
  const auto honest = mechanism.run(config, BidProfile::truthful(config));
  const auto slack =
      mechanism.run(config, BidProfile::deviate(config, 0, 1.0, 2.5));
  for (std::size_t j = 1; j < config.size(); ++j) {
    EXPECT_LT(slack.agents[j].payment, honest.agents[j].payment)
        << "agent " << j;
  }
}

TEST(CompBonus, NameReflectsBasis) {
  CompBonusMechanism exec_basis;
  CompBonusMechanism bid_basis(lbmv::core::default_allocator(),
                               CompensationBasis::kBid);
  EXPECT_EQ(exec_basis.name(), "comp-bonus");
  EXPECT_NE(bid_basis.name().find("bid"), std::string::npos);
  EXPECT_TRUE(exec_basis.uses_verification());
}

}  // namespace

// Tests for iterated best-response dynamics: convergence to truth under the
// verified mechanism, divergence under the classical no-payment protocol.

#include <gtest/gtest.h>

#include <limits>

#include "lbmv/alloc/pr_allocator.h"
#include "lbmv/core/comp_bonus.h"
#include "lbmv/core/no_payment.h"
#include "lbmv/model/system_config.h"
#include "lbmv/strategy/best_response.h"
#include "lbmv/util/error.h"

namespace {

using lbmv::core::CompBonusMechanism;
using lbmv::core::NoPaymentMechanism;
using lbmv::model::SystemConfig;
using lbmv::strategy::best_response_dynamics;
using lbmv::strategy::BestResponseOptions;
using lbmv::strategy::BestResponseResult;

BestResponseOptions quick_options() {
  BestResponseOptions options;
  options.max_rounds = 12;
  options.bid_grid = 64;
  options.exec_multipliers = {1.0, 1.5, 2.0};
  return options;
}

TEST(BestResponse, CompBonusConvergesToTruthTelling) {
  const SystemConfig config({1.0, 2.0, 5.0}, 10.0);
  CompBonusMechanism mechanism;
  const BestResponseResult result =
      best_response_dynamics(mechanism, config, quick_options());
  EXPECT_TRUE(result.converged);
  EXPECT_LT(result.max_relative_untruthfulness, 0.02);
  for (std::size_t i = 0; i < config.size(); ++i) {
    EXPECT_DOUBLE_EQ(result.final_executions[i], config.true_value(i))
        << "agent " << i << " slacked";
  }
  // The settled system runs at (essentially) the optimum.
  const double optimal = lbmv::alloc::pr_optimal_latency(
      std::vector<double>(config.true_values().begin(),
                          config.true_values().end()),
      config.arrival_rate());
  EXPECT_NEAR(result.final_actual_latency, optimal, 0.01 * optimal);
}

TEST(BestResponse, NoPaymentDynamicsCollapseToMaxBids) {
  const SystemConfig config({1.0, 2.0, 5.0}, 10.0);
  NoPaymentMechanism mechanism;
  BestResponseOptions options = quick_options();
  options.optimize_execution = false;
  const BestResponseResult result =
      best_response_dynamics(mechanism, config, options);
  // Every agent dodges work by inflating its bid to the search ceiling.
  for (std::size_t i = 0; i < config.size(); ++i) {
    EXPECT_GT(result.final_bids[i] / config.true_value(i), 10.0)
        << "agent " << i;
  }
  EXPECT_GT(result.max_relative_untruthfulness, 5.0);
}

TEST(BestResponse, TrajectoryIsRecorded) {
  const SystemConfig config({1.0, 3.0}, 4.0);
  CompBonusMechanism mechanism;
  const BestResponseResult result =
      best_response_dynamics(mechanism, config, quick_options());
  ASSERT_GE(result.rounds, 1);
  EXPECT_EQ(result.bid_trajectory.size(),
            static_cast<std::size_t>(result.rounds));
  for (const auto& round : result.bid_trajectory) {
    EXPECT_EQ(round.size(), config.size());
  }
  EXPECT_EQ(result.bid_trajectory.back(), result.final_bids);
}

TEST(BestResponse, ValidatesOptions) {
  const SystemConfig config({1.0, 2.0}, 4.0);
  CompBonusMechanism mechanism;
  BestResponseOptions bad = quick_options();
  bad.max_rounds = 0;
  EXPECT_THROW((void)best_response_dynamics(mechanism, config, bad),
               lbmv::util::PreconditionError);
  bad = quick_options();
  bad.bid_lo_mult = 2.0;
  bad.bid_hi_mult = 1.0;
  EXPECT_THROW((void)best_response_dynamics(mechanism, config, bad),
               lbmv::util::PreconditionError);
  bad = quick_options();
  bad.exec_multipliers = {0.5};
  EXPECT_THROW((void)best_response_dynamics(mechanism, config, bad),
               lbmv::util::PreconditionError);
}

TEST(BestResponse, ValidatesNonFiniteOptions) {
  const SystemConfig config({1.0, 2.0}, 4.0);
  CompBonusMechanism mechanism;
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  BestResponseOptions bad = quick_options();
  bad.tol = nan;
  EXPECT_THROW((void)best_response_dynamics(mechanism, config, bad),
               lbmv::util::PreconditionError);
  bad = quick_options();
  bad.bid_hi_mult = inf;
  EXPECT_THROW((void)best_response_dynamics(mechanism, config, bad),
               lbmv::util::PreconditionError);
  bad = quick_options();
  bad.bid_lo_mult = -1.0;
  EXPECT_THROW((void)best_response_dynamics(mechanism, config, bad),
               lbmv::util::PreconditionError);
  bad = quick_options();
  bad.exec_multipliers = {1.0, nan};
  EXPECT_THROW((void)best_response_dynamics(mechanism, config, bad),
               lbmv::util::PreconditionError);
  bad = quick_options();
  bad.frozen_agents = {config.size()};  // out of range
  EXPECT_THROW((void)best_response_dynamics(mechanism, config, bad),
               lbmv::util::PreconditionError);
}

TEST(BestResponse, FrozenAgentsNeverRevise) {
  // Freeze agent 0 under the no-payment protocol: everyone else inflates
  // bids to the ceiling while the frozen agent stays truthful.
  const SystemConfig config({1.0, 2.0, 5.0}, 10.0);
  NoPaymentMechanism mechanism;
  BestResponseOptions options = quick_options();
  options.optimize_execution = false;
  options.frozen_agents = {0};
  const BestResponseResult result =
      best_response_dynamics(mechanism, config, options);
  EXPECT_DOUBLE_EQ(result.final_bids[0], config.true_value(0));
  EXPECT_DOUBLE_EQ(result.final_executions[0], config.true_value(0));
  for (std::size_t i = 1; i < config.size(); ++i) {
    EXPECT_GT(result.final_bids[i] / config.true_value(i), 10.0)
        << "agent " << i;
  }
}

TEST(BestResponse, NaiveAndIncrementalPathsAgree) {
  // The use_incremental = false baseline re-runs the mechanism per grid
  // point but must land on the same dynamics (identical utilities up to
  // roundoff drive identical argmax decisions at this granularity).
  const SystemConfig config({1.0, 2.0, 5.0}, 10.0);
  CompBonusMechanism mechanism;
  BestResponseOptions options = quick_options();
  const BestResponseResult fast =
      best_response_dynamics(mechanism, config, options);
  options.use_incremental = false;
  const BestResponseResult naive =
      best_response_dynamics(mechanism, config, options);
  ASSERT_EQ(fast.final_bids.size(), naive.final_bids.size());
  for (std::size_t i = 0; i < config.size(); ++i) {
    EXPECT_NEAR(fast.final_bids[i], naive.final_bids[i],
                1e-6 * config.true_value(i))
        << "agent " << i;
    EXPECT_DOUBLE_EQ(fast.final_executions[i], naive.final_executions[i]);
  }
  EXPECT_NEAR(fast.final_actual_latency, naive.final_actual_latency,
              1e-9 * naive.final_actual_latency);
}

}  // namespace

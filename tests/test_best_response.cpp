// Tests for iterated best-response dynamics: convergence to truth under the
// verified mechanism, divergence under the classical no-payment protocol.

#include <gtest/gtest.h>

#include "lbmv/alloc/pr_allocator.h"
#include "lbmv/core/comp_bonus.h"
#include "lbmv/core/no_payment.h"
#include "lbmv/model/system_config.h"
#include "lbmv/strategy/best_response.h"
#include "lbmv/util/error.h"

namespace {

using lbmv::core::CompBonusMechanism;
using lbmv::core::NoPaymentMechanism;
using lbmv::model::SystemConfig;
using lbmv::strategy::best_response_dynamics;
using lbmv::strategy::BestResponseOptions;
using lbmv::strategy::BestResponseResult;

BestResponseOptions quick_options() {
  BestResponseOptions options;
  options.max_rounds = 12;
  options.bid_grid = 64;
  options.exec_multipliers = {1.0, 1.5, 2.0};
  return options;
}

TEST(BestResponse, CompBonusConvergesToTruthTelling) {
  const SystemConfig config({1.0, 2.0, 5.0}, 10.0);
  CompBonusMechanism mechanism;
  const BestResponseResult result =
      best_response_dynamics(mechanism, config, quick_options());
  EXPECT_TRUE(result.converged);
  EXPECT_LT(result.max_relative_untruthfulness, 0.02);
  for (std::size_t i = 0; i < config.size(); ++i) {
    EXPECT_DOUBLE_EQ(result.final_executions[i], config.true_value(i))
        << "agent " << i << " slacked";
  }
  // The settled system runs at (essentially) the optimum.
  const double optimal = lbmv::alloc::pr_optimal_latency(
      std::vector<double>(config.true_values().begin(),
                          config.true_values().end()),
      config.arrival_rate());
  EXPECT_NEAR(result.final_actual_latency, optimal, 0.01 * optimal);
}

TEST(BestResponse, NoPaymentDynamicsCollapseToMaxBids) {
  const SystemConfig config({1.0, 2.0, 5.0}, 10.0);
  NoPaymentMechanism mechanism;
  BestResponseOptions options = quick_options();
  options.optimize_execution = false;
  const BestResponseResult result =
      best_response_dynamics(mechanism, config, options);
  // Every agent dodges work by inflating its bid to the search ceiling.
  for (std::size_t i = 0; i < config.size(); ++i) {
    EXPECT_GT(result.final_bids[i] / config.true_value(i), 10.0)
        << "agent " << i;
  }
  EXPECT_GT(result.max_relative_untruthfulness, 5.0);
}

TEST(BestResponse, TrajectoryIsRecorded) {
  const SystemConfig config({1.0, 3.0}, 4.0);
  CompBonusMechanism mechanism;
  const BestResponseResult result =
      best_response_dynamics(mechanism, config, quick_options());
  ASSERT_GE(result.rounds, 1);
  EXPECT_EQ(result.bid_trajectory.size(),
            static_cast<std::size_t>(result.rounds));
  for (const auto& round : result.bid_trajectory) {
    EXPECT_EQ(round.size(), config.size());
  }
  EXPECT_EQ(result.bid_trajectory.back(), result.final_bids);
}

TEST(BestResponse, ValidatesOptions) {
  const SystemConfig config({1.0, 2.0}, 4.0);
  CompBonusMechanism mechanism;
  BestResponseOptions bad = quick_options();
  bad.max_rounds = 0;
  EXPECT_THROW((void)best_response_dynamics(mechanism, config, bad),
               lbmv::util::PreconditionError);
  bad = quick_options();
  bad.bid_lo_mult = 2.0;
  bad.bid_hi_mult = 1.0;
  EXPECT_THROW((void)best_response_dynamics(mechanism, config, bad),
               lbmv::util::PreconditionError);
  bad = quick_options();
  bad.exec_multipliers = {0.5};
  EXPECT_THROW((void)best_response_dynamics(mechanism, config, bad),
               lbmv::util::PreconditionError);
}

}  // namespace

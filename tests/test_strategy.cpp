// Unit tests for agent strategies.

#include <gtest/gtest.h>

#include <vector>

#include "lbmv/strategy/strategy.h"
#include "lbmv/util/error.h"

namespace {

using namespace lbmv::strategy;
using lbmv::model::BidProfile;
using lbmv::model::SystemConfig;
using lbmv::util::Rng;

TEST(TruthfulStrategy, ReportsAndExecutesTruth) {
  TruthfulStrategy s;
  Rng rng(1);
  EXPECT_DOUBLE_EQ(s.bid(2.5, rng), 2.5);
  EXPECT_DOUBLE_EQ(s.execution(2.5, 2.5, rng), 2.5);
  EXPECT_EQ(s.name(), "truthful");
}

TEST(ScalingStrategy, AppliesMultipliers) {
  ScalingStrategy s(3.0, 2.0);
  Rng rng(1);
  EXPECT_DOUBLE_EQ(s.bid(1.5, rng), 4.5);
  EXPECT_DOUBLE_EQ(s.execution(1.5, 4.5, rng), 3.0);
  EXPECT_NE(s.name().find("scaling"), std::string::npos);
}

TEST(ScalingStrategy, ClampsExecutionToCapacity) {
  // exec_mult below 1 would mean running faster than physically possible;
  // the strategy clamps it to 1.
  ScalingStrategy s(0.5, 0.5);
  Rng rng(1);
  EXPECT_DOUBLE_EQ(s.execution(2.0, 1.0, rng), 2.0);
}

TEST(ScalingStrategy, RejectsNonPositiveMultipliers) {
  EXPECT_THROW(ScalingStrategy(0.0, 1.0), lbmv::util::PreconditionError);
  EXPECT_THROW(ScalingStrategy(1.0, -1.0), lbmv::util::PreconditionError);
}

TEST(RandomBidStrategy, StaysInsideRangeAndExecutesTruthfully) {
  RandomBidStrategy s(0.5, 2.0);
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    const double b = s.bid(4.0, rng);
    EXPECT_GE(b, 2.0 - 1e-12);
    EXPECT_LE(b, 8.0 + 1e-12);
  }
  EXPECT_DOUBLE_EQ(s.execution(4.0, 5.0, rng), 4.0);
  EXPECT_THROW(RandomBidStrategy(2.0, 1.0), lbmv::util::PreconditionError);
}

TEST(SlackExecutionStrategy, BidsTruthSlacksExecution) {
  SlackExecutionStrategy s(2.0);
  Rng rng(1);
  EXPECT_DOUBLE_EQ(s.bid(3.0, rng), 3.0);
  EXPECT_DOUBLE_EQ(s.execution(3.0, 3.0, rng), 6.0);
  EXPECT_THROW(SlackExecutionStrategy(0.9), lbmv::util::PreconditionError);
}

TEST(Strategies, ClonesAreIndependentAndEquivalent) {
  const std::vector<std::unique_ptr<Strategy>> strategies = [] {
    std::vector<std::unique_ptr<Strategy>> v;
    v.push_back(std::make_unique<TruthfulStrategy>());
    v.push_back(std::make_unique<ScalingStrategy>(2.0, 1.5));
    v.push_back(std::make_unique<SlackExecutionStrategy>(3.0));
    return v;
  }();
  Rng rng(1);
  for (const auto& s : strategies) {
    const auto copy = s->clone();
    EXPECT_EQ(copy->name(), s->name());
    Rng r1(9), r2(9);
    EXPECT_DOUBLE_EQ(copy->bid(2.0, r1), s->bid(2.0, r2));
  }
}

TEST(ApplyStrategies, BuildsProfileAgentByAgent) {
  const SystemConfig config({1.0, 2.0, 4.0}, 10.0);
  TruthfulStrategy truthful;
  ScalingStrategy liar(3.0, 1.0);
  SlackExecutionStrategy slacker(2.0);
  std::vector<const Strategy*> assigned{&truthful, &liar, &slacker};
  Rng rng(5);
  const BidProfile profile = apply_strategies(config, assigned, rng);
  EXPECT_DOUBLE_EQ(profile.bids[0], 1.0);
  EXPECT_DOUBLE_EQ(profile.bids[1], 6.0);
  EXPECT_DOUBLE_EQ(profile.executions[1], 2.0);
  EXPECT_DOUBLE_EQ(profile.bids[2], 4.0);
  EXPECT_DOUBLE_EQ(profile.executions[2], 8.0);
  EXPECT_TRUE(profile.executions_respect_capacity(config));
}

TEST(ApplyStrategies, ValidatesArguments) {
  const SystemConfig config({1.0, 2.0}, 5.0);
  TruthfulStrategy truthful;
  Rng rng(1);
  std::vector<const Strategy*> wrong_count{&truthful};
  EXPECT_THROW((void)apply_strategies(config, wrong_count, rng),
               lbmv::util::PreconditionError);
  std::vector<const Strategy*> with_null{&truthful, nullptr};
  EXPECT_THROW((void)apply_strategies(config, with_null, rng),
               lbmv::util::PreconditionError);
}

}  // namespace

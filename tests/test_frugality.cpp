// Tests for the frugality analysis (paper Figure 6).

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "lbmv/analysis/paper_config.h"
#include "lbmv/core/comp_bonus.h"
#include "lbmv/core/frugality.h"
#include "lbmv/core/no_payment.h"
#include "lbmv/model/bids.h"
#include "lbmv/util/error.h"

namespace {

using lbmv::analysis::paper_table1_config;
using lbmv::core::CompBonusMechanism;
using lbmv::core::frugality_arrival_sweep;
using lbmv::core::frugality_heterogeneity_sweep;
using lbmv::core::frugality_of;
using lbmv::core::FrugalityReport;
using lbmv::model::BidProfile;
using lbmv::model::SystemConfig;

TEST(Frugality, PaperTrue1RatioMatchesClosedForm) {
  // Total payment = L* + sum_i (L_{-i} - L*) and total valuation = L*; for
  // Table 1 the ratio evaluates to ~2.138, within the paper's "at most 2.5".
  const SystemConfig config = paper_table1_config();
  CompBonusMechanism mechanism;
  const auto outcome = mechanism.run(config, BidProfile::truthful(config));
  const FrugalityReport report = frugality_of(outcome);
  EXPECT_NEAR(report.total_valuation, 400.0 / 5.1, 1e-9);
  const double expected_bonus_sum =
      2.0 * (400.0 / 4.1 - 400.0 / 5.1) + 3.0 * (400.0 / 4.6 - 400.0 / 5.1) +
      5.0 * (400.0 / 4.9 - 400.0 / 5.1) + 6.0 * (400.0 / 5.0 - 400.0 / 5.1);
  EXPECT_NEAR(report.total_payment, 400.0 / 5.1 + expected_bonus_sum, 1e-8);
  EXPECT_NEAR(report.ratio(), 2.138, 0.002);
  EXPECT_LE(report.ratio(), 2.5);  // the paper's frugality bound
}

TEST(Frugality, RatioIsScaleInvariantInArrivalRate) {
  // Every term scales as R^2, so the truthful frugality ratio is flat in R.
  const SystemConfig config = paper_table1_config();
  CompBonusMechanism mechanism;
  const std::vector<double> rates{5.0, 10.0, 20.0, 40.0, 80.0};
  const auto sweep = frugality_arrival_sweep(mechanism, config, rates);
  ASSERT_EQ(sweep.size(), rates.size());
  const double ratio0 = sweep.front().report.ratio();
  for (const auto& point : sweep) {
    EXPECT_NEAR(point.report.ratio(), ratio0, 1e-9);
    EXPECT_NEAR(point.report.total_valuation,
                point.parameter * point.parameter / 5.1, 1e-8);
  }
}

TEST(Frugality, VoluntaryParticipationImpliesPaymentAtLeastValuation) {
  // The paper's lower bound: the total payment can never fall below the
  // total valuation, otherwise some truthful agent would lose.
  const SystemConfig config = paper_table1_config();
  CompBonusMechanism mechanism;
  const auto outcome = mechanism.run(config, BidProfile::truthful(config));
  const auto report = frugality_of(outcome);
  EXPECT_GE(report.total_payment, report.total_valuation);
  EXPECT_GE(report.ratio(), 1.0);
}

TEST(Frugality, HeterogeneitySweepIsMonotoneInstancewiseSane) {
  CompBonusMechanism mechanism;
  const std::vector<double> spreads{1.0, 2.0, 5.0, 10.0, 50.0};
  const auto sweep =
      frugality_heterogeneity_sweep(mechanism, 8, 20.0, spreads);
  ASSERT_EQ(sweep.size(), spreads.size());
  for (const auto& point : sweep) {
    EXPECT_GE(point.report.ratio(), 1.0);
    EXPECT_TRUE(std::isfinite(point.report.ratio()));
  }
  // Closed form: ratio = 1 + sum_i s_i / (S - s_i) with s_i = 1/t_i and
  // S = sum s_i.  A homogeneous system gives 1 + n/(n-1); heterogeneity
  // concentrates capacity in the fast machines, makes them more pivotal,
  // and drives the ratio *up*.
  EXPECT_NEAR(sweep.front().report.ratio(), 1.0 + 8.0 / 7.0, 1e-9);
  EXPECT_LT(sweep.front().report.ratio(), sweep.back().report.ratio());
}

TEST(Frugality, ZeroPaymentMechanismHasRatioZero) {
  const SystemConfig config({1.0, 2.0}, 4.0);
  lbmv::core::NoPaymentMechanism mechanism;
  const auto outcome = mechanism.run(config, BidProfile::truthful(config));
  const auto report = frugality_of(outcome);
  EXPECT_DOUBLE_EQ(report.total_payment, 0.0);
  EXPECT_DOUBLE_EQ(report.ratio(), 0.0);
}

TEST(Frugality, EmptyValuationGivesInfiniteRatio) {
  FrugalityReport report;
  report.total_payment = 1.0;
  report.total_valuation = 0.0;
  EXPECT_TRUE(std::isinf(report.ratio()));
}

TEST(Frugality, SweepsRejectBadParameters) {
  CompBonusMechanism mechanism;
  const SystemConfig config({1.0, 2.0}, 4.0);
  const std::vector<double> bad_rate{-1.0};
  EXPECT_THROW(
      (void)frugality_arrival_sweep(mechanism, config, bad_rate),
      lbmv::util::PreconditionError);
  const std::vector<double> bad_spread{0.5};
  EXPECT_THROW(
      (void)frugality_heterogeneity_sweep(mechanism, 4, 10.0, bad_spread),
      lbmv::util::PreconditionError);
  const std::vector<double> ok{2.0};
  EXPECT_THROW(
      (void)frugality_heterogeneity_sweep(mechanism, 1, 10.0, ok),
      lbmv::util::PreconditionError);
}

}  // namespace

// Tests for the figure/table rendering used by the bench binaries.

#include <gtest/gtest.h>

#include <string>

#include "lbmv/analysis/paper_experiments.h"
#include "lbmv/analysis/report.h"
#include "lbmv/core/comp_bonus.h"

namespace {

using namespace lbmv::analysis;
using lbmv::core::CompBonusMechanism;

class ReportTest : public ::testing::Test {
 protected:
  void SetUp() override {
    config_ =
        std::make_unique<lbmv::model::SystemConfig>(paper_table1_config());
    results_ = run_paper_experiments(mechanism_, *config_);
  }
  CompBonusMechanism mechanism_;
  std::unique_ptr<lbmv::model::SystemConfig> config_;
  std::vector<ExperimentResult> results_;
};

TEST_F(ReportTest, Table1ListsEveryComputer) {
  const std::string text = render_table1(*config_);
  EXPECT_NE(text.find("Table 1"), std::string::npos);
  EXPECT_NE(text.find("C1 "), std::string::npos);
  EXPECT_NE(text.find("C16"), std::string::npos);
  EXPECT_NE(text.find("10.0"), std::string::npos);
}

TEST_F(ReportTest, Table2ListsEveryExperiment) {
  const std::string text = render_table2();
  for (const char* name : {"True1", "True2", "High1", "High2", "High3",
                           "High4", "Low1", "Low2"}) {
    EXPECT_NE(text.find(name), std::string::npos) << name;
  }
}

TEST_F(ReportTest, Figure1ContainsHeadlineLatency) {
  const std::string text = render_figure1(results_);
  EXPECT_NE(text.find("Figure 1"), std::string::npos);
  EXPECT_NE(text.find("78.43"), std::string::npos);
  EXPECT_NE(text.find("+11.0%"), std::string::npos);  // Low1
  EXPECT_NE(text.find("+65.8%"), std::string::npos);  // Low2
}

TEST_F(ReportTest, Figure2ShowsC1PaymentAndUtility) {
  const std::string text = render_figure2(results_);
  EXPECT_NE(text.find("Figure 2"), std::string::npos);
  EXPECT_NE(text.find("Compensation"), std::string::npos);
  EXPECT_NE(text.find("Utility"), std::string::npos);
  // True1 utility of C1 = 19.13.
  EXPECT_NE(text.find("19.13"), std::string::npos);
}

TEST_F(ReportTest, PerComputerFigureCoversAllSixteen) {
  const std::string text =
      render_per_computer_figure(results_.front(), "Figure 3");
  EXPECT_NE(text.find("Figure 3"), std::string::npos);
  EXPECT_NE(text.find("True1"), std::string::npos);
  EXPECT_NE(text.find("C16"), std::string::npos);
}

TEST_F(ReportTest, Figure6ReportsTheRatio) {
  const std::string text = render_figure6(results_);
  EXPECT_NE(text.find("Figure 6"), std::string::npos);
  EXPECT_NE(text.find("2.14"), std::string::npos);  // True1 ratio 2.138
  EXPECT_NE(text.find("2.5"), std::string::npos);   // the paper's bound
}

TEST_F(ReportTest, CsvHasHeaderAndOneRowPerExperiment) {
  const std::string text = results_csv(results_);
  std::size_t lines = 0;
  for (char c : text) lines += c == '\n';
  EXPECT_EQ(lines, 1u + results_.size());
  EXPECT_NE(text.find("experiment,bid_mult"), std::string::npos);
  EXPECT_NE(text.find("Low2"), std::string::npos);
}

}  // namespace
